"""Trace-driven workload replay.

Production storage studies replay captured block traces.  This module
reads a simple CSV trace format and replays it **open-loop** (requests are
issued at their recorded timestamps, regardless of completions — the
standard method for measuring how a system copes with a fixed offered
load, as opposed to the closed-loop perf generator).

Trace format (header required, extra columns ignored)::

    time_us,op,slba,nlb,priority
    0.0,read,128,1,latency
    12.5,write,4096,8,throughput

``priority`` is optional (default throughput).  :func:`synthesize_trace`
generates Poisson-arrival traces for tests and examples, so the replay
path is usable without shipping trace files.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Union

import numpy as np

from ..core.flags import Priority
from ..errors import WorkloadError
from ..ssd.latency import OP_READ, OP_WRITE, VALID_OPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nvmeof.initiator import NvmeOfInitiator
    from ..nvmeof.qpair import IoRequest
    from ..simcore.engine import Environment


@dataclass(frozen=True)
class TraceRecordEntry:
    """One request of a trace."""

    time_us: float
    op: str
    slba: int
    nlb: int
    priority: Priority = Priority.THROUGHPUT

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise WorkloadError("negative trace timestamp")
        if self.op not in VALID_OPS:
            raise WorkloadError(f"unknown op {self.op!r} in trace")
        if self.nlb < 1 or self.slba < 0:
            raise WorkloadError("invalid LBA range in trace")


def load_trace(path: Union[str, Path]) -> List[TraceRecordEntry]:
    """Parse a CSV trace file (see the module docstring for the format)."""
    entries: List[TraceRecordEntry] = []
    with Path(path).open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"time_us", "op", "slba", "nlb"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise WorkloadError(
                f"trace needs columns {sorted(required)}; got {reader.fieldnames}"
            )
        for line_no, row in enumerate(reader, start=2):
            try:
                entries.append(
                    TraceRecordEntry(
                        time_us=float(row["time_us"]),
                        op=row["op"].strip(),
                        slba=int(row["slba"]),
                        nlb=int(row["nlb"]),
                        priority=Priority.parse(row.get("priority") or "throughput"),
                    )
                )
            except (ValueError, KeyError) as exc:
                raise WorkloadError(f"bad trace row at line {line_no}: {exc}") from exc
    if not entries:
        raise WorkloadError(f"empty trace: {path}")
    if any(b.time_us < a.time_us for a, b in zip(entries, entries[1:])):
        raise WorkloadError("trace timestamps must be non-decreasing")
    return entries


def save_trace(path: Union[str, Path], entries: Iterable[TraceRecordEntry]) -> Path:
    """Write entries back out in the canonical CSV format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_us", "op", "slba", "nlb", "priority"])
        for entry in entries:
            writer.writerow(
                [entry.time_us, entry.op, entry.slba, entry.nlb, entry.priority.value]
            )
    return path


def synthesize_trace(
    rng: np.random.Generator,
    duration_us: float,
    iops: float,
    read_fraction: float = 0.7,
    latency_fraction: float = 0.1,
    namespace_blocks: int = 1 << 20,
    nlb: int = 1,
) -> List[TraceRecordEntry]:
    """Generate a Poisson-arrival trace with a mixed op/priority profile."""
    if duration_us <= 0 or iops <= 0:
        raise WorkloadError("duration and iops must be positive")
    if not (0 <= read_fraction <= 1 and 0 <= latency_fraction <= 1):
        raise WorkloadError("fractions must lie in [0, 1]")
    entries: List[TraceRecordEntry] = []
    t = 0.0
    mean_gap = 1e6 / iops
    while True:
        t += float(rng.exponential(mean_gap))
        if t >= duration_us:
            break
        entries.append(
            TraceRecordEntry(
                time_us=t,
                op=OP_READ if rng.random() < read_fraction else OP_WRITE,
                slba=int(rng.integers(0, namespace_blocks - nlb + 1)),
                nlb=nlb,
                priority=(
                    Priority.LATENCY if rng.random() < latency_fraction
                    else Priority.THROUGHPUT
                ),
            )
        )
    if not entries:
        raise WorkloadError("trace parameters produced no requests")
    return entries


class TraceReplayer:
    """Replays a trace open-loop against one initiator."""

    def __init__(
        self,
        env: "Environment",
        initiator: "NvmeOfInitiator",
        trace: List[TraceRecordEntry],
        nsid: int = 1,
    ) -> None:
        if not trace:
            raise WorkloadError("empty trace")
        self.env = env
        self.initiator = initiator
        self.trace = trace
        self.nsid = nsid
        self.issued = 0
        self.dropped = 0  # offered load exceeding the queue depth
        self.requests: List["IoRequest"] = []
        self.process = env.process(self._run(), name="trace-replay")

    @property
    def done(self):
        return self.process

    def _run(self):
        env = self.env
        start = env.now
        for entry in self.trace:
            delay = start + entry.time_us - env.now
            if delay > 0:
                yield env.timeout(delay)
            if not self.initiator.qpair.has_capacity:
                # Open-loop semantics: an overloaded queue rejects (the
                # real initiator would return EAGAIN to the application).
                self.dropped += 1
                continue
            request = self.initiator.submit(
                entry.op, slba=entry.slba, nlb=entry.nlb,
                nsid=self.nsid, priority=entry.priority,
            )
            self.requests.append(request)
            self.issued += 1
        # Flush any coalescing tail and wait for in-flight requests.
        from ..core.initiator import OpfInitiator

        if isinstance(self.initiator, OpfInitiator):
            self.initiator.drain()
        for request in self.requests:
            if not request.done:
                yield request.completion_event(env)
        return self.issued

    # -- results ---------------------------------------------------------------
    def latencies(self, priority: Optional[Priority] = None) -> List[float]:
        return [
            r.latency for r in self.requests
            if r.done and (priority is None or r.priority is priority)
        ]
