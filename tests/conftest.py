"""Shared scenario-builder fixtures.

The golden-regression, fault, and QoS suites all exercise the same
scaled-down Figure-7 cell (1 LS + 2 TC tenants on one target, read mix,
10 Gbps, 200 ops per TC tenant, window 16, seed 1).  The builders live
here so the topology is declared once; suites layer their own knobs
(chaos schedules, retry policies, QoS policies) as overrides.

``build_fig7_cell`` is importable for module-level helpers; the
``fig7_cell`` / ``fig7_cell_config`` fixtures expose the same factories to
tests that prefer injection.
"""

import pytest

from repro.cluster.scenario import Scenario, ScenarioConfig
from repro.workloads.mixes import tenants_for_ratio

#: The golden cell's knobs (tests/test_golden_regression.py pins digests of
#: exactly this shape — change them and every golden moves).
FIG7_CELL_DEFAULTS = dict(
    protocol="nvme-opf",
    network_gbps=10.0,
    op_mix="read",
    total_ops=200,
    window_size=16,
    seed=1,
)


def fig7_cell_config(**overrides) -> ScenarioConfig:
    """The golden cell's :class:`ScenarioConfig` with per-test overrides."""
    return ScenarioConfig(**{**FIG7_CELL_DEFAULTS, **overrides})


def build_fig7_cell(ratio: str = "1:2", **overrides) -> Scenario:
    """An unrun golden-cell :class:`Scenario` (callers invoke ``.run()``)."""
    cfg = fig7_cell_config(**overrides)
    return Scenario.two_sided(cfg, tenants_for_ratio(ratio, op_mix=cfg.op_mix))


@pytest.fixture
def fig7_cell():
    """Factory fixture: ``fig7_cell(ratio="1:2", **config_overrides)``."""
    return build_fig7_cell


@pytest.fixture
def fig7_config():
    """Factory fixture for just the config half of the golden cell."""
    return fig7_cell_config
