"""Tests for the log-structured KV store application substrate."""

import pytest

from repro.apps import KvStore
from repro.cluster.node import InitiatorNode, TargetNode
from repro.errors import WorkloadError
from repro.net import Fabric
from repro.simcore import Environment, RandomStreams


def make_store(protocol="nvme-opf", memtable_limit=8, region_blocks=1 << 12):
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, RandomStreams(17), protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    initiator = inode.add_initiator(
        "kv", tnode, protocol=protocol, queue_depth=64, window_size=16
    )
    env.run(until=initiator.connect())
    store = KvStore(env, initiator, memtable_limit=memtable_limit,
                    region_blocks=region_blocks)
    return env, store, tnode


def run_app(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_get_after_put_memtable():
    env, store, _ = make_store()

    def app(env):
        yield from store.put("alpha", 100)
        value = yield from store.get("alpha")
        return value

    assert run_app(env, app(env)) == 100
    assert store.stats.hits_memtable == 1
    assert store.stats.flushes == 0


def test_get_after_flush_reads_segment():
    env, store, _ = make_store(memtable_limit=4)

    def app(env):
        for i in range(4):  # 4th put triggers the flush
            yield from store.put(f"k{i}", 64 + i)
        assert store.stats.flushes == 1
        assert store.memtable == {}
        value = yield from store.get("k2")
        return value

    assert run_app(env, app(env)) == 66
    assert store.stats.hits_segment == 1
    assert store.stats.segment_probes == 1


def test_newer_value_wins_across_segments():
    env, store, _ = make_store(memtable_limit=2)

    def app(env):
        yield from store.put("key", 100)
        yield from store.put("pad0", 1)  # flush #1
        yield from store.put("key", 200)
        yield from store.put("pad1", 1)  # flush #2
        value = yield from store.get("key")
        return value

    assert run_app(env, app(env)) == 200
    assert len(store.segments) == 2


def test_miss_probes_all_segments():
    env, store, _ = make_store(memtable_limit=2)

    def app(env):
        for i in range(6):
            yield from store.put(f"k{i}", 10)
        value = yield from store.get("ghost")
        return value

    assert run_app(env, app(env)) is None
    assert store.stats.misses == 1


def test_compaction_preserves_data_and_reduces_segments():
    env, store, _ = make_store(memtable_limit=4)

    def app(env):
        for i in range(16):
            yield from store.put(f"k{i}", 50 + i)
        yield from store.put("k3", 999)  # overwrite, lives in a newer run
        assert len(store.segments) >= 3
        yield from store.compact()
        assert len(store.segments) == 1
        assert store.stats.compactions == 1
        v3 = yield from store.get("k3")
        v7 = yield from store.get("k7")
        return v3, v7

    v3, v7 = run_app(env, app(env))
    assert v3 == 999
    assert v7 == 57
    assert store.read_amplification == 1.0


def test_kv_priorities_reach_target():
    """GET probes are latency-sensitive; flush/compaction traffic coalesces."""
    env, store, tnode = make_store(memtable_limit=8)

    def app(env):
        for i in range(32):
            yield from store.put(f"k{i}", 64)
        yield from store.get("k1")
        yield from store.compact()

    run_app(env, app(env))
    env.run()
    stats = tnode.target.stats
    assert stats.coalesced_notifications > 0  # flush/compaction coalesced
    assert tnode.target.pm.ls_bypassed >= 1  # the GET probe bypassed


def test_kv_contains_and_validation():
    env, store, _ = make_store()

    def app(env):
        yield from store.put("present", 10)

    run_app(env, app(env))
    assert "present" in store
    assert "absent" not in store
    with pytest.raises(WorkloadError):
        run_app(env, store.put("", 10))
    with pytest.raises(WorkloadError):
        run_app(env, store.put("k", 0))
    with pytest.raises(WorkloadError):
        KvStore(env, store.initiator, memtable_limit=0)
    with pytest.raises(WorkloadError):
        KvStore(env, store.initiator, memtable_limit=64, region_blocks=8)


def test_kv_region_exhaustion_is_loud():
    env, store, _ = make_store(memtable_limit=4, region_blocks=16)

    def app(env):
        # Keep flushing without compaction until the region overflows.
        try:
            for i in range(200):
                yield from store.put(f"k{i}", BLOCK := 4096)
        except WorkloadError as exc:
            return str(exc)
        return None

    message = run_app(env, app(env))
    assert message is not None and "exhausted" in message


def test_kv_on_baseline_runtime():
    env, store, _ = make_store(protocol="spdk", memtable_limit=4)

    def app(env):
        for i in range(8):
            yield from store.put(f"k{i}", 32)
        return (yield from store.get("k5"))

    assert run_app(env, app(env)) == 32
