"""Equivalence audits for the batched/struct-of-arrays hot paths.

Each refactored layer must be observably identical to the per-item code it
replaced:

* batched telemetry taps fold buffered completions through the EWMA/P²
  estimators in arrival order — every snapshot field bit-identical to an
  eagerly-updated reference;
* ``SubmissionQueue.submit_batch`` / ``IoQpair.submit_batch`` ring one
  doorbell per batch but preserve CID allocation, execution order, and
  completion times exactly;
* the TCP sender's parallel-array message framing slices the same message
  runs the old linear scan produced, through ACK pruning and compaction.
"""

import pytest

from repro.errors import QueueFullError
from repro.qos.telemetry import RATE_WINDOW_TICKS, Ewma, P2Quantile, TenantTelemetry
from repro.simcore import Environment
from repro.simcore.rng import RandomStreams
from repro.ssd.device import NvmeSsd
from repro.ssd.latency import OP_FLUSH, OP_READ, OP_WRITE
from repro.ssd.queues import NvmeCommand, SubmissionQueue


# ---------------------------------------------------------------------------
# Telemetry: batched flush == eager per-completion updates
# ---------------------------------------------------------------------------


class _EagerReference:
    """The pre-refactor per-completion update logic, kept as the oracle."""

    def __init__(self):
        self.latency_ewma = Ewma(0.2)
        self.peak_ewma = Ewma(0.5)
        self.tail = P2Quantile(0.99)
        self.total_ops = 0
        self.total_bytes = 0
        self.total_failed = 0
        self._iops = 0
        self._ibytes = 0
        self._imax = 0.0
        self._isum = 0.0

    def observe(self, latency_us, nbytes, failed=False):
        self.total_ops += 1
        self._iops += 1
        self._isum += latency_us
        if latency_us > self._imax:
            self._imax = latency_us
        self.latency_ewma.update(latency_us)
        self.tail.add(latency_us)
        if failed:
            self.total_failed += 1
        else:
            self.total_bytes += nbytes
            self._ibytes += nbytes

    def close_interval(self):
        ops, imax = self._iops, self._imax
        self._iops = 0
        self._ibytes = 0
        self._imax = 0.0
        self._isum = 0.0
        if ops:
            self.peak_ewma.update(imax)


def test_batched_telemetry_matches_eager_reference_exactly():
    """Interleave completions and ticks; every estimator and counter must
    stay bit-identical to eager per-completion updates."""
    import numpy as np

    rng = np.random.default_rng(17)
    tel = TenantTelemetry("t0")
    ref = _EagerReference()
    now = 0.0
    for tick in range(30):
        n = int(rng.integers(0, 12))
        for _ in range(n):
            latency = float(rng.lognormal(4.0, 0.5))
            nbytes = int(rng.integers(1, 9)) * 4096
            failed = bool(rng.random() < 0.1)
            tel.observe(latency, nbytes, failed=failed)
            ref.observe(latency, nbytes, failed=failed)
        now += 100.0
        sample = tel.snapshot(now, 100.0)
        assert sample.ops == n
        assert tel.latency_ewma.value == ref.latency_ewma.value
        assert tel.tail.count == ref.tail.count
        assert tel.tail.value == ref.tail.value
        assert tel.total_ops == ref.total_ops
        assert tel.total_bytes == ref.total_bytes
        assert tel.total_failed == ref.total_failed
        ref.close_interval()
        assert tel.peak_ewma.value == ref.peak_ewma.value


def test_telemetry_totals_flush_pending_on_read():
    tel = TenantTelemetry("t")
    tel.observe(100.0, 4096)
    tel.observe(200.0, 4096, failed=True)
    # Direct attribute reads must see the buffered completions.
    assert tel.total_ops == 2
    assert tel.total_bytes == 4096
    assert tel.total_failed == 1
    assert tel._pending == []  # drained by the property reads


def test_telemetry_p99_flushes_pending():
    tel = TenantTelemetry("t")
    for i in range(64):
        tel.observe(100.0 + i, 4096)
    assert tel.p99_estimate is not None
    assert tel._pending == []


def test_telemetry_snapshot_drains_interval_and_pending():
    tel = TenantTelemetry("t")
    tel.observe(50.0, 1000)
    s1 = tel.snapshot(100.0, 100.0)
    assert s1.ops == 1 and s1.bytes_moved == 1000
    s2 = tel.snapshot(200.0, 100.0)
    assert s2.ops == 0 and s2.bytes_moved == 0
    assert len(tel._rate_ring) == min(2, RATE_WINDOW_TICKS)


# ---------------------------------------------------------------------------
# SQ doorbell batching
# ---------------------------------------------------------------------------


def _run_submissions(batched):
    env = Environment()
    ssd = NvmeSsd(env, streams=RandomStreams(5), name="nvme0")
    qp = ssd.create_qpair(depth=64)
    done = []
    qp.on_completion = lambda c: done.append((c.cid, c.status, c.completed_at))
    specs = []
    for i in range(24):
        op = (OP_READ, OP_WRITE, OP_FLUSH)[i % 3]
        if op == OP_FLUSH:
            specs.append((op, 1, 0, 1, None))
        else:
            specs.append((op, 1, i * 4, 1 + i % 3, None))
    if batched:
        commands = qp.submit_batch(specs)
        assert [c.cid for c in commands] == list(range(24))
    else:
        for op, nsid, slba, nlb, ctx in specs:
            qp.submit(op, nsid=nsid, slba=slba, nlb=nlb, context=ctx)
    env.run()
    return done


def test_submit_batch_completions_identical_to_submit_loop():
    assert _run_submissions(batched=True) == _run_submissions(batched=False)


def test_submit_batch_rings_doorbell_once():
    env = Environment()
    sq = SubmissionQueue(env, depth=16)
    rings = []
    sq.doorbell = lambda: rings.append(len(sq))
    cmds = [NvmeCommand(cid=i, opcode=OP_READ, slba=i, nlb=1) for i in range(5)]
    sq.submit_batch(cmds)
    assert rings == [5]  # one ring, after all five commands were placed
    assert sq.submitted_total == 5


def test_submit_batch_empty_is_silent():
    env = Environment()
    sq = SubmissionQueue(env, depth=8)
    rings = []
    sq.doorbell = lambda: rings.append(1)
    sq.submit_batch([])
    assert rings == [] and sq.submitted_total == 0


def test_submit_batch_overflow_raises_queue_full():
    env = Environment()
    sq = SubmissionQueue(env, depth=4)  # 3 usable slots
    cmds = [NvmeCommand(cid=i, opcode=OP_READ, slba=i, nlb=1) for i in range(4)]
    with pytest.raises(QueueFullError):
        sq.submit_batch(cmds)


def test_submit_batch_stamps_submission_time():
    env = Environment(initial_time=7.5)
    sq = SubmissionQueue(env, depth=8)
    cmds = [NvmeCommand(cid=0, opcode=OP_READ, slba=0, nlb=1)]
    sq.submit_batch(cmds)
    assert cmds[0].submitted_at == 7.5


def test_iqpair_submit_batch_validates_lba_ranges():
    env = Environment()
    ssd = NvmeSsd(env, streams=RandomStreams(0))
    qp = ssd.create_qpair(depth=16)
    from repro.errors import DeviceError

    with pytest.raises(DeviceError):
        qp.submit_batch([(OP_READ, 1, ssd.profile.capacity_blocks, 8, None)])


# ---------------------------------------------------------------------------
# TCP sender framing arrays
# ---------------------------------------------------------------------------


def _make_socket():
    from repro.net.nic import Nic
    from repro.net.tcp import TcpSocket

    env = Environment()

    class _NullNic(Nic):
        def __init__(self, env):
            self.env = env
            self.node = "n0"
            self._handlers = {}
            self.sent = []

        def register_connection(self, conn_id, handler):
            self._handlers[conn_id] = handler

        def transmit(self, packet):
            self.sent.append(packet)

    nic = _NullNic(env)
    sock = TcpSocket(env, nic, remote_node="n1", conn_id=1)
    return env, nic, sock


def test_segment_messages_bisect_matches_linear_scan():
    _env, _nic, sock = _make_socket()
    sizes = [100, 250, 50, 400, 125, 75]
    ends = []
    total = 0
    for i, size in enumerate(sizes):
        total += size
        ends.append(total)
        sock._msg_ends.append(total)
        sock._msg_payloads.append(f"m{i}")
        sock._buffered_end = total

    def linear(lo, hi):
        return [
            (end, f"m{i}")
            for i, end in enumerate(ends)
            if lo < end <= hi
        ]

    for lo in range(0, total + 1, 25):
        for hi in (lo + 1, lo + 100, lo + 500, total + 10):
            assert sock._segment_messages(lo, hi - lo) == linear(lo, hi)


def test_ack_prune_advances_head_and_compacts():
    _env, _nic, sock = _make_socket()
    n = 3000
    for i in range(n):
        sock.send_message(f"m{i}", 100)
    # ACK everything: each cumulative ACK opens the window further, so keep
    # acking the transmitted frontier until the whole backlog has flowed
    # through.  The prune path must advance past every message (and compact
    # once the dead prefix dominates).
    while sock._snd_una < sock._buffered_end:
        sock._on_ack(sock._snd_nxt)
    assert sock._msg_head == len(sock._msg_ends) or sock._msg_head == 0
    # After full acknowledgement no message frames remain visible.
    assert sock._segment_messages(0, n * 100) == []


def test_sender_framing_survives_compaction_boundary():
    _env, _nic, sock = _make_socket()
    for i in range(2000):
        sock.send_message(f"m{i}", 10)
        sock._on_ack(sock._snd_nxt)  # ack as we go => head grows, compacts
    assert sock.stats.messages_sent == 2000
    # Everything acked: framing arrays fully pruned.
    assert sock._segment_messages(0, 40000) == []
