"""Tests for scaling builders, sweeps, and the experiments harnesses."""

import pytest

from repro.cluster import (
    Scenario,
    ScenarioConfig,
    build_scaleout,
    compare_protocols,
    pattern1,
    pattern2,
    sweep,
    tenants_for_node,
)
from repro.errors import ConfigError


# ------------------------------------------------------------- scaling ----
def test_tenants_for_node_composition():
    tenants = tenants_for_node(0, 5, "read", include_ls=True)
    assert len(tenants) == 5
    assert sum(t.is_latency_sensitive for t in tenants) == 1
    assert tenants[0].is_latency_sensitive  # one LS, then TC


def test_tenants_for_node_single_initiator_is_tc():
    tenants = tenants_for_node(2, 1, "write", include_ls=True)
    assert len(tenants) == 1
    assert not tenants[0].is_latency_sensitive


def test_tenants_for_node_without_ls():
    tenants = tenants_for_node(0, 4, "read", include_ls=False)
    assert len(tenants) == 4
    assert not any(t.is_latency_sensitive for t in tenants)


def test_tenants_for_node_validation():
    with pytest.raises(ConfigError):
        tenants_for_node(0, 0, "read")


def test_build_scaleout_wiring():
    cfg = ScenarioConfig(protocol="spdk", total_ops=40, warmup_us=0)
    sc = build_scaleout(cfg, n_node_pairs=2, initiators_per_node=2)
    res = sc.run()
    assert len(sc.target_nodes) == 2
    assert len(sc.initiator_nodes) == 2
    assert res.commands_received >= 80  # 2 TC x 40 (plus LS traffic)
    with pytest.raises(ConfigError):
        build_scaleout(cfg, 0, 1)


def test_pattern1_point_counts():
    points = pattern1("spdk", "read", n_node_pairs=2,
                      initiators_per_node_range=[1, 2], total_ops=40)
    assert [p.total_initiators for p in points] == [2, 4]
    assert all(p.throughput_mbps > 0 for p in points)


def test_pattern2_point_counts():
    points = pattern2("nvme-opf", "read", node_pairs_range=[1, 2],
                      initiators_per_node=2, total_ops=40)
    assert [p.total_initiators for p in points] == [2, 4]
    # Adding a node pair adds hardware: throughput roughly scales.
    assert points[1].throughput_mbps > points[0].throughput_mbps * 1.5


# ---------------------------------------------------------------- sweep ----
def test_sweep_grid_applies_config_fields():
    base = ScenarioConfig(protocol="spdk", total_ops=40, warmup_us=0)
    points = sweep(base, {"network_gbps": [25.0, 100.0]}, ratio="0:1")
    assert len(points) == 2
    assert {p[0]["network_gbps"] for p in points} == {25.0, 100.0}
    assert all(p[1].tc_throughput_mbps > 0 for p in points)


def test_sweep_empty_grid_rejected():
    base = ScenarioConfig(protocol="spdk", total_ops=10)
    with pytest.raises(ConfigError):
        sweep(base, {})


def test_sweep_custom_builder_receives_extras():
    base = ScenarioConfig(protocol="spdk", total_ops=30, warmup_us=0)
    seen = []

    def build(cfg, extra):
        seen.append(extra)
        from repro.workloads import tenants_for_ratio

        return Scenario.two_sided(cfg, tenants_for_ratio(extra["ratio"]))

    points = sweep(base, {"ratio": ["0:1", "0:2"]}, build=build)
    assert len(points) == 2
    assert seen == [{"ratio": "0:1"}, {"ratio": "0:2"}]


def test_compare_protocols_pairs_points():
    base = ScenarioConfig(total_ops=40, warmup_us=0)
    rows = compare_protocols(base, {"op_mix": ["read"]}, ratio="0:1")
    assert len(rows) == 1
    params, spdk, opf = rows[0]
    assert params == {"op_mix": "read"}
    assert spdk.protocol == "spdk"
    assert opf.protocol == "nvme-opf"


# ------------------------------------------------------------ experiments ----
def test_fig6c_smoke():
    from repro.experiments import run_fig6c

    points = run_fig6c(windows=(16,), total_ops=64)
    labels = {p.label for p in points}
    assert labels == {"spdk-qd1", "spdk-qd128", "opf-w16"}
    opf = next(p for p in points if p.label == "opf-w16" and p.op_mix == "read")
    spdk = next(p for p in points if p.label == "spdk-qd128" and p.op_mix == "read")
    assert opf.notifications < spdk.notifications


def test_fig7_smoke_and_helpers():
    from repro.experiments import mean_tail_reduction, pair_up, run_fig7

    points = run_fig7(ratios=("1:1",), speeds=(100.0,), mixes=("read",), total_ops=80)
    assert len(points) == 2
    pairs = pair_up(points)
    assert len(pairs) == 1
    assert mean_tail_reduction(points) != 0.0


def test_fig8_smoke():
    from repro.experiments import run_fig8

    curves = run_fig8(mixes=("read",), patterns=(2,), pairs_range=[1], total_ops=60)
    assert len(curves) == 2
    for curve in curves:
        assert curve.points[0].throughput_mbps > 0


def test_fig9_smoke():
    from repro.experiments import run_fig9

    points = run_fig9(
        modes=("write",), patterns=(2,), n_node_pairs=1, ranks_per_node_max=2,
        particles_per_rank=4096, timesteps=1, dataset_load_us=100.0,
    )
    assert len(points) == 2
    assert all(p.bandwidth_mbps > 0 for p in points)


def test_table1_contains_paper_values():
    from repro.experiments import table1_rows

    text = str(table1_rows())
    for needle in ("EPYC 7352", "EPYC 7543", "256GB", "3.2 TB", "1.6 TB"):
        assert needle in text


def test_runner_cli_quick_table1(capsys):
    from repro.experiments.runner import main

    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_paper_targets_registry():
    from repro.experiments import PAPER_TARGETS

    assert "fig7_read_100g_1_4" in PAPER_TARGETS
    target = PAPER_TARGETS["fig7_read_100g_1_4"]
    assert target.value == 49.5
    assert target.kind == "gain_pct"
    # Every figure of the evaluation is represented.
    figures = {t.figure[0] for t in PAPER_TARGETS.values()}
    assert {"6", "7", "8", "9"} <= figures


def test_validation_scorecard_all_pass():
    from repro.experiments.validate import format_validation, run_validation

    entries = run_validation(total_ops=250)
    assert len(entries) == 10
    assert all(e.ok for e in entries), [e.target_id for e in entries if not e.ok]
    text = format_validation(entries)
    assert "PASS" in text and "FAIL" not in text


def test_random_pattern_scenario():
    from repro.workloads import tenants_for_ratio

    cfg = ScenarioConfig(protocol="nvme-opf", pattern="rand", total_ops=120,
                         warmup_us=0, seed=9)
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:1"))
    res = sc.run()
    assert res.tc_throughput_mbps > 0
    gen = sc.generators[0]
    assert gen.pattern.kind == "rand"
