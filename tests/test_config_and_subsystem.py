"""Tests for config presets, subsystems, discovery, and transport framing."""

import pytest

from repro.config import (
    CHAMELEON_CC,
    CLOUDLAB_CL,
    network_tuning,
    preset_for_network,
)
from repro.errors import ConfigError, DeviceError, NetworkError, ProtocolError
from repro.net import Endpoint, Fabric, NVME_TCP_PORT
from repro.nvmeof import DiscoveryService, PduTransport, Subsystem
from repro.simcore import Environment, RandomStreams
from repro.ssd import NvmeSsd, SsdProfile


# ----------------------------------------------------------------- presets ----
def test_preset_pairing_matches_table1():
    assert preset_for_network(10.0) is CHAMELEON_CC
    assert preset_for_network(25.0) is CHAMELEON_CC
    assert preset_for_network(100.0) is CLOUDLAB_CL
    with pytest.raises(ConfigError):
        preset_for_network(40.0)


def test_preset_values_match_table1():
    assert CHAMELEON_CC.cores == 24
    assert CLOUDLAB_CL.cores == 32
    assert CHAMELEON_CC.ram_gb == CLOUDLAB_CL.ram_gb == 256
    assert CHAMELEON_CC.ssd.capacity_bytes == 3200 * 1000**3
    assert CLOUDLAB_CL.ssd.capacity_bytes == 1600 * 1000**3


def test_reads_complete_faster_than_writes():
    """The asymmetry §V-B leans on, in both device profiles."""
    for preset in (CHAMELEON_CC, CLOUDLAB_CL):
        assert preset.ssd.read_mean_us < preset.ssd.write_mean_us


def test_network_tuning_scales_queues_with_rate():
    q10 = network_tuning(10.0).queue_packets
    q25 = network_tuning(25.0).queue_packets
    q100 = network_tuning(100.0).queue_packets
    assert q10 < q25 < q100


def test_device_saturates_between_10g_and_100g():
    """The calibration invariant: device ceiling above the 10G line rate's
    reach but below 100G, so 10G is network-bound and 100G device-bound."""
    from repro.units import gbps_to_bytes_per_us

    read_ceiling_mbps = CLOUDLAB_CL.ssd.read_iops_ceiling() * 4096 / 1e6
    assert read_ceiling_mbps < gbps_to_bytes_per_us(100.0)
    assert read_ceiling_mbps > gbps_to_bytes_per_us(10.0) * 0.8


# ---------------------------------------------------------------- endpoint ----
def test_endpoint_parse_and_str():
    ep = Endpoint("node1", 4420)
    assert str(ep) == "node1:4420"
    assert Endpoint.parse("node1:4420") == ep
    with pytest.raises(NetworkError):
        Endpoint.parse("garbage")
    with pytest.raises(NetworkError):
        Endpoint("", 1)
    with pytest.raises(NetworkError):
        Endpoint("x", 70000)


# --------------------------------------------------------------- subsystem ----
def make_ssd(env):
    return NvmeSsd(env, profile=SsdProfile(), streams=RandomStreams(0))


def test_subsystem_namespace_mapping():
    env = Environment()
    sub = Subsystem("nqn.2024-06.io.repro:t0")
    ssd1, ssd2 = make_ssd(env), make_ssd(env)
    assert sub.add_device(ssd1) == 1
    assert sub.add_device(ssd2) == 2
    assert sub.resolve(1).device is ssd1
    assert sub.resolve(2).device is ssd2
    assert sub.namespace_ids == [1, 2]
    assert len(sub.devices) == 2


def test_subsystem_validation():
    with pytest.raises(ConfigError):
        Subsystem("not-an-nqn")
    env = Environment()
    sub = Subsystem("nqn.x")
    ssd = make_ssd(env)
    sub.add_namespace(1, ssd)
    with pytest.raises(ConfigError):
        sub.add_namespace(1, ssd)
    with pytest.raises(DeviceError):
        sub.resolve(9)
    with pytest.raises(DeviceError):
        sub.add_namespace(2, ssd, device_nsid=5)  # device has no nsid 5


# --------------------------------------------------------------- discovery ----
def test_discovery_register_and_lookup():
    disc = DiscoveryService()
    ep = disc.register("nqn.a", "target0")
    assert ep.port == NVME_TCP_PORT
    assert disc.lookup("nqn.a").node == "target0"
    assert disc.subsystems() == ["nqn.a"]
    assert len(disc) == 1
    with pytest.raises(NetworkError):
        disc.register("nqn.a", "other")
    with pytest.raises(NetworkError):
        disc.lookup("nqn.missing")
    disc.clear()
    assert len(disc) == 0


# ---------------------------------------------------------------- transport ----
def test_transport_counts_and_dispatch():
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    fabric.add_node("a")
    fabric.add_node("b")
    sa, sb = fabric.connect("a", "b")
    ta, tb = PduTransport(sa), PduTransport(sb)
    got = []
    tb.set_handler(got.append)

    from repro.nvmeof import CapsuleCmdPdu, Sqe
    from repro.nvmeof.capsule import OPCODE_READ

    pdu = CapsuleCmdPdu(sqe=Sqe(opcode=OPCODE_READ, cid=1))
    ta.send(pdu)
    env.run()
    assert got == [pdu]
    assert ta.pdus_sent == 1
    assert tb.pdus_received == 1
    assert ta.bytes_sent == pdu.wire_size


def test_transport_validate_mode_ships_decoded_twin():
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    fabric.add_node("a")
    fabric.add_node("b")
    sa, sb = fabric.connect("a", "b")
    ta, tb = PduTransport(sa, validate=True), PduTransport(sb, validate=True)
    got = []
    tb.set_handler(got.append)

    from repro.nvmeof import CapsuleCmdPdu, Sqe
    from repro.nvmeof.capsule import OPCODE_WRITE

    pdu = CapsuleCmdPdu(
        sqe=Sqe(opcode=OPCODE_WRITE, cid=9, rsvd_priority=0b11, rsvd_tenant=42),
        data_len=4096,
    )
    ta.send(pdu)
    env.run()
    twin = got[0]
    assert twin is not pdu  # a re-decoded object, not the original
    assert twin.sqe.rsvd_priority == 0b11
    assert twin.sqe.rsvd_tenant == 42
    assert twin.data_len == 4096


def test_transport_requires_handler():
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    fabric.add_node("a")
    fabric.add_node("b")
    sa, sb = fabric.connect("a", "b")
    ta, tb = PduTransport(sa), PduTransport(sb)  # no handler on tb

    from repro.nvmeof import IcReqPdu

    ta.send(IcReqPdu())
    with pytest.raises(ProtocolError):
        env.run()
