"""Tests for the NVMe-oPF flag codec and CID queues."""

import pytest

from repro.core import (
    CidQueue,
    ENTRY_BYTES,
    FLAG_DRAINING,
    FLAG_THROUGHPUT_CRITICAL,
    Priority,
    check_tenant_id,
    pack_flags,
    unpack_flags,
)
from repro.errors import ProtocolError, QueueFullError, TenantError


# ------------------------------------------------------------------ flags ----
def test_pack_latency_sensitive_is_zero():
    assert pack_flags(Priority.LATENCY) == 0


def test_pack_throughput_critical():
    assert pack_flags(Priority.THROUGHPUT) == FLAG_THROUGHPUT_CRITICAL


def test_pack_draining():
    flags = pack_flags(Priority.THROUGHPUT, draining=True)
    assert flags == FLAG_THROUGHPUT_CRITICAL | FLAG_DRAINING


def test_flags_fit_in_two_bits():
    """§IV-A: 'we modestly use two reserved bits'."""
    for priority in Priority:
        for draining in (False, True):
            if draining and priority is Priority.LATENCY:
                continue
            assert pack_flags(priority, draining) < 4


def test_unpack_roundtrip():
    for priority in Priority:
        for draining in (False, True):
            if draining and priority is Priority.LATENCY:
                continue
            got_p, got_d = unpack_flags(pack_flags(priority, draining))
            assert got_p is priority
            assert got_d is draining


def test_draining_requires_throughput():
    with pytest.raises(ProtocolError):
        pack_flags(Priority.LATENCY, draining=True)
    with pytest.raises(ProtocolError):
        unpack_flags(FLAG_DRAINING)  # draining without TC bit


def test_unpack_rejects_unknown_bits():
    with pytest.raises(ProtocolError):
        unpack_flags(0b100)


def test_priority_parse():
    assert Priority.parse("latency") is Priority.LATENCY
    assert Priority.parse("THROUGHPUT") is Priority.THROUGHPUT
    assert Priority.parse(Priority.LATENCY) is Priority.LATENCY
    with pytest.raises(ProtocolError):
        Priority.parse("fast")


def test_tenant_id_range():
    assert check_tenant_id(0) == 0
    assert check_tenant_id(255) == 255
    with pytest.raises(TenantError):
        check_tenant_id(256)
    with pytest.raises(TenantError):
        check_tenant_id(-1)


# -------------------------------------------------------------- CID queue ----
def test_cid_queue_fifo_drain_through():
    q = CidQueue()
    for cid in [5, 9, 2, 7]:
        q.push(cid)
    assert q.drain_through(2) == [5, 9, 2]
    assert len(q) == 1
    assert 7 in q and 5 not in q


def test_cid_queue_drain_through_head():
    q = CidQueue()
    q.push(1)
    q.push(2)
    assert q.drain_through(1) == [1]
    assert q.as_list() == [2]


def test_cid_queue_drain_unknown_cid_rejected():
    q = CidQueue()
    q.push(1)
    with pytest.raises(ProtocolError):
        q.drain_through(99)


def test_cid_queue_duplicate_push_rejected():
    q = CidQueue()
    q.push(4)
    with pytest.raises(ProtocolError):
        q.push(4)


def test_cid_queue_capacity():
    q = CidQueue(capacity=2)
    q.push(1)
    q.push(2)
    assert q.is_full
    with pytest.raises(QueueFullError):
        q.push(3)


def test_cid_queue_cid_range():
    q = CidQueue()
    with pytest.raises(ProtocolError):
        q.push(0x10000)
    with pytest.raises(ProtocolError):
        q.push(-1)


def test_cid_queue_zero_copy_space_accounting():
    """§IV-B: queues store CIDs only — footprint independent of I/O size."""
    q = CidQueue()
    for cid in range(100):
        q.push(cid)
    assert q.space_bytes == 100 * ENTRY_BYTES == 200


def test_cid_queue_drain_all():
    q = CidQueue()
    for cid in (3, 1, 4):
        q.push(cid)
    assert q.drain_all() == [3, 1, 4]
    assert len(q) == 0
    assert q.total_drained == 3


def test_cid_queue_peek():
    q = CidQueue()
    with pytest.raises(ProtocolError):
        q.peek()
    q.push(11)
    assert q.peek() == 11
    assert len(q) == 1  # peek does not consume
