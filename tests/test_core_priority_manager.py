"""Unit tests for Algorithms 1-4 (Fig. 5) via the priority managers."""

import pytest

from repro.core import DrainGroup, Priority, TenantRegistry
from repro.core.priority_manager import InitiatorPriorityManager, TargetPriorityManager
from repro.errors import ConfigError, ProtocolError, TenantError
from repro.nvmeof.capsule import OPCODE_READ, Sqe
from repro.nvmeof.pdu import CapsuleCmdPdu


def make_sqe(cid, priority=Priority.THROUGHPUT, draining=False, tenant=0):
    from repro.core.flags import pack_flags

    return Sqe(
        opcode=OPCODE_READ,
        cid=cid,
        rsvd_priority=pack_flags(priority, draining),
        rsvd_tenant=tenant,
    )


def make_cmd(cid, priority=Priority.THROUGHPUT, draining=False, tenant=0):
    return CapsuleCmdPdu(sqe=make_sqe(cid, priority, draining, tenant))


# ---------------------------------------------------- Alg. 1: before send ----
def test_alg1_tc_requests_queue_and_get_flags():
    pm = InitiatorPriorityManager(window_size=4, queue_depth=128)
    for cid in range(3):
        sqe = Sqe(opcode=OPCODE_READ, cid=cid)
        draining = pm.before_send(sqe, Priority.THROUGHPUT, tenant_id=7)
        assert not draining
        assert sqe.rsvd_priority == 0b01
        assert sqe.rsvd_tenant == 7
    assert len(pm.cid_queue) == 3
    assert pm.pending_undrained == 3


def test_alg1_every_wth_request_drains():
    pm = InitiatorPriorityManager(window_size=4, queue_depth=128)
    drains = []
    for cid in range(12):
        sqe = Sqe(opcode=OPCODE_READ, cid=cid)
        drains.append(pm.before_send(sqe, Priority.THROUGHPUT, tenant_id=0))
    assert [i for i, d in enumerate(drains) if d] == [3, 7, 11]
    assert pm.drains_sent == 3
    assert pm.pending_undrained == 0


def test_alg1_latency_sensitive_not_queued():
    pm = InitiatorPriorityManager(window_size=4, queue_depth=128)
    sqe = Sqe(opcode=OPCODE_READ, cid=1)
    draining = pm.before_send(sqe, Priority.LATENCY, tenant_id=3)
    assert not draining
    assert sqe.rsvd_priority == 0
    assert len(pm.cid_queue) == 0


def test_window_larger_than_queue_depth_rejected():
    """§IV-A live-lock guard."""
    with pytest.raises(ConfigError):
        InitiatorPriorityManager(window_size=129, queue_depth=128)
    # But demonstrable when explicitly allowed.
    pm = InitiatorPriorityManager(window_size=129, queue_depth=128, allow_lock=True)
    assert pm.window_size == 129


# -------------------------------------------------- Alg. 2: on response ----
def test_alg2_coalesced_response_retires_in_order():
    pm = InitiatorPriorityManager(window_size=4, queue_depth=128)
    for cid in range(8):
        pm.before_send(Sqe(opcode=OPCODE_READ, cid=cid), Priority.THROUGHPUT, 0)
    retired = pm.on_coalesced_response(3)
    assert retired == [0, 1, 2, 3]
    retired = pm.on_coalesced_response(7)
    assert retired == [4, 5, 6, 7]
    assert pm.coalesced_retired == 8


def test_alg2_individual_response_for_queued_cid_counts_premature():
    pm = InitiatorPriorityManager(window_size=4, queue_depth=128)
    pm.before_send(Sqe(opcode=OPCODE_READ, cid=5), Priority.THROUGHPUT, 0)
    assert pm.on_individual_response(5) is True  # premature (broken target)
    assert pm.premature_responses == 1
    assert 5 not in pm.cid_queue
    assert pm.on_individual_response(99) is False  # LS cid: normal path


def test_force_drain_flags():
    pm = InitiatorPriorityManager(window_size=8, queue_depth=128)
    for cid in range(3):
        pm.before_send(Sqe(opcode=OPCODE_READ, cid=cid), Priority.THROUGHPUT, 0)
    marker = Sqe.for_io("flush", cid=50)
    pm.force_drain_flags(marker, tenant_id=0)
    assert marker.rsvd_priority == 0b11
    assert pm.pending_undrained == 0
    assert pm.on_coalesced_response(50) == [0, 1, 2, 50]


# ------------------------------------------------ Alg. 3: target arrival ----
def test_alg3_ls_bypasses_queues():
    pm = TargetPriorityManager()
    priority, group, batch = pm.on_command(None, make_cmd(1, Priority.LATENCY))
    assert priority is Priority.LATENCY
    assert group is None
    assert len(batch) == 1
    assert pm.ls_bypassed == 1
    assert pm.registry.total_queued() == 0


def test_alg3_tc_queues_until_drain():
    pm = TargetPriorityManager()
    for cid in range(3):
        _p, group, batch = pm.on_command(None, make_cmd(cid, tenant=4))
        assert group is None and batch == []
    assert pm.registry.get(4).queued == 3

    _p, group, batch = pm.on_command(None, make_cmd(3, tenant=4, draining=True))
    assert group is not None
    assert group.drain_cid == 3
    assert group.cids == [0, 1, 2, 3]
    assert [p.sqe.cid for _c, p in batch] == [0, 1, 2, 3]
    assert pm.registry.get(4).queued == 0


def test_alg3_tenant_isolation():
    """Lock-free design: tenant A's drain must not flush tenant B."""
    pm = TargetPriorityManager()
    pm.on_command(None, make_cmd(0, tenant=1))
    pm.on_command(None, make_cmd(1, tenant=2))
    _p, group, batch = pm.on_command(None, make_cmd(2, tenant=1, draining=True))
    assert group.cids == [0, 2]
    assert pm.registry.get(2).queued == 1  # tenant 2 untouched


def test_alg3_same_cids_different_tenants_allowed():
    pm = TargetPriorityManager()
    pm.on_command(None, make_cmd(7, tenant=1))
    pm.on_command(None, make_cmd(7, tenant=2))  # same CID, distinct tenant
    assert pm.registry.get(1).queued == 1
    assert pm.registry.get(2).queued == 1


# ---------------------------------------------- Alg. 4: target completion ----
def test_alg4_ls_completion_responds_immediately():
    assert TargetPriorityManager.on_completion(None, cid=1, status=0) is True


def test_alg4_tc_group_responds_only_when_all_done():
    group = DrainGroup(tenant_id=0, drain_cid=3, cids=[0, 1, 2, 3], formed_at=0.0)
    assert not TargetPriorityManager.on_completion(group, 1, 0)
    assert not TargetPriorityManager.on_completion(group, 3, 0)  # drain done early!
    assert not TargetPriorityManager.on_completion(group, 0, 0)
    assert TargetPriorityManager.on_completion(group, 2, 0)  # last member


def test_drain_group_out_of_order_completion_safe():
    """Out-of-order device completions (§IV-C) never release the window early."""
    group = DrainGroup(tenant_id=0, drain_cid=2, cids=[0, 1, 2], formed_at=0.0)
    assert not group.mark_complete(2)  # drain finishes first
    assert group.pending == 2
    assert not group.complete


def test_drain_group_propagates_worst_status():
    group = DrainGroup(tenant_id=0, drain_cid=1, cids=[0, 1], formed_at=0.0)
    group.mark_complete(0, status=0x80)
    group.mark_complete(1, status=0)
    assert group.worst_status == 0x80


def test_drain_group_validation():
    with pytest.raises(ProtocolError):
        DrainGroup(tenant_id=0, drain_cid=9, cids=[0, 1], formed_at=0.0)
    with pytest.raises(ProtocolError):
        DrainGroup(tenant_id=0, drain_cid=1, cids=[1, 1], formed_at=0.0)
    group = DrainGroup(tenant_id=0, drain_cid=1, cids=[0, 1], formed_at=0.0)
    with pytest.raises(ProtocolError):
        group.mark_complete(5)
    group.mark_complete(0)
    with pytest.raises(ProtocolError):
        group.mark_complete(0)  # double completion


# ------------------------------------------------------- tenant registry ----
def test_registry_creates_and_limits_tenants():
    reg = TenantRegistry(max_tenants=2)
    reg.get_or_create(0)
    reg.get_or_create(1)
    assert len(reg) == 2
    with pytest.raises(TenantError):
        reg.get_or_create(2)
    reg.get_or_create(1)  # existing is fine


def test_registry_unknown_tenant():
    reg = TenantRegistry()
    with pytest.raises(TenantError):
        reg.get(9)


def test_registry_space_accounting():
    pm = TargetPriorityManager()
    for cid in range(10):
        pm.on_command(None, make_cmd(cid, tenant=1))
    assert pm.registry.total_space_bytes() == 20  # 10 CIDs x 2 bytes
