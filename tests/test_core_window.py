"""Tests for window-size selection and the dynamic controller (§IV-D)."""

import pytest

from repro.core import (
    DynamicWindowController,
    WindowSample,
    clamp_to_queue_depth,
    select_window,
)
from repro.errors import ConfigError


def test_default_sweet_spot_on_fast_fabrics():
    assert select_window("read", 100.0) == 32
    assert select_window("read", 25.0) == 32


def test_smaller_window_on_saturated_10g():
    """Fig. 6b: large windows hurt on 10 Gbps."""
    assert select_window("read", 10.0) == 16


def test_mixed_low_concurrency_shrinks_window():
    """Fig. 7b: mixed windows have high variance with few tenants."""
    assert select_window("mixed", 100.0, tc_initiators=1) == 16
    assert select_window("mixed", 100.0, tc_initiators=4) == 32


def test_clamped_to_half_queue_depth():
    assert select_window("read", 100.0, queue_depth=16) == 8
    assert select_window("read", 100.0, queue_depth=1) == 1
    assert clamp_to_queue_depth(64, 32) == 16
    assert clamp_to_queue_depth(1, 1) == 1


def test_select_window_validation():
    with pytest.raises(ConfigError):
        select_window("scan", 100.0)
    with pytest.raises(ConfigError):
        select_window("read", 0)
    with pytest.raises(ConfigError):
        select_window("read", 100.0, tc_initiators=0)
    with pytest.raises(ConfigError):
        select_window("read", 100.0, queue_depth=0)


def test_dynamic_controller_grows_on_improvement():
    ctl = DynamicWindowController(initial=8, queue_depth=256)
    w0 = ctl.window
    ctl.observe(WindowSample(window=w0, requests=8, elapsed_us=100.0))  # baseline
    w1 = ctl.observe(WindowSample(window=w0, requests=16, elapsed_us=100.0))  # better
    assert w1 > w0


def test_dynamic_controller_reverses_on_regression():
    ctl = DynamicWindowController(initial=16, queue_depth=256)
    ctl.observe(WindowSample(window=16, requests=32, elapsed_us=100.0))
    w_up = ctl.observe(WindowSample(window=16, requests=32, elapsed_us=100.0))  # same-ish -> grows
    w_down = ctl.observe(WindowSample(window=w_up, requests=4, elapsed_us=100.0))  # much worse
    assert w_down < w_up


def test_dynamic_controller_respects_bounds():
    ctl = DynamicWindowController(initial=32, min_window=4, max_window=64, queue_depth=128)
    # Feed monotonically improving samples: should cap at max.
    rate = 1.0
    for _ in range(10):
        rate *= 2
        ctl.observe(WindowSample(window=ctl.window, requests=int(rate * 100), elapsed_us=100.0))
    assert ctl.window <= 64
    # Monotonically regressing: floors at min.
    for _ in range(10):
        rate /= 2
        ctl.observe(WindowSample(window=ctl.window, requests=max(1, int(rate * 100)), elapsed_us=100.0))
    assert ctl.window >= 4


def test_dynamic_controller_validation():
    with pytest.raises(ConfigError):
        DynamicWindowController(min_window=0)
    with pytest.raises(ConfigError):
        DynamicWindowController(min_window=64, max_window=8)


def test_window_sample_rate():
    assert WindowSample(window=4, requests=100, elapsed_us=50.0).rate == 2.0
    assert WindowSample(window=4, requests=1, elapsed_us=0.0).rate == 0.0
