"""Tests for the CPU cost model, FIFO core, and reactor."""

import pytest

from repro.cpu import CpuCore, CpuCostModel, DEFAULT_COSTS, Reactor
from repro.errors import ConfigError, SimulationError
from repro.simcore import Environment


# ------------------------------------------------------------------ costs ----
def test_cost_model_validation():
    with pytest.raises(ConfigError):
        CpuCostModel(pdu_rx=-1.0)


def test_baseline_per_request_aggregate():
    costs = CpuCostModel(
        pdu_rx=1.0, pdu_tx=1.0, cqe_build=1.0, nvme_submit=1.0, nvme_complete=1.0
    )
    assert costs.target_per_request_baseline == pytest.approx(5.0)


def test_coalesced_amortises_response_cost():
    costs = DEFAULT_COSTS
    per_1 = costs.target_per_request_coalesced(1)
    per_32 = costs.target_per_request_coalesced(32)
    assert per_32 < per_1
    assert per_32 < costs.target_per_request_baseline
    # The window-independent floor:
    floor = costs.pdu_rx + costs.nvme_submit + costs.nvme_complete + costs.retire
    assert per_32 == pytest.approx(floor + (costs.cqe_build + costs.pdu_tx) / 32)


def test_coalesced_window_validation():
    with pytest.raises(ConfigError):
        DEFAULT_COSTS.target_per_request_coalesced(0)


def test_scaled_cost_model():
    half = DEFAULT_COSTS.scaled(0.5)
    assert half.pdu_rx == pytest.approx(DEFAULT_COSTS.pdu_rx / 2)
    with pytest.raises(ConfigError):
        DEFAULT_COSTS.scaled(0)


def test_with_overrides():
    costs = DEFAULT_COSTS.with_overrides(cqe_build=9.0)
    assert costs.cqe_build == 9.0
    assert costs.pdu_rx == DEFAULT_COSTS.pdu_rx


# ------------------------------------------------------------------- core ----
def test_core_serializes_fifo():
    env = Environment()
    core = CpuCore(env)
    finish_times = []

    def waiter(env, cost):
        yield core.execute(cost)
        finish_times.append(env.now)

    env.process(waiter(env, 2.0))
    env.process(waiter(env, 3.0))
    env.process(waiter(env, 1.0))
    env.run()
    assert finish_times == [pytest.approx(2.0), pytest.approx(5.0), pytest.approx(6.0)]


def test_core_idle_gap_then_work():
    env = Environment()
    core = CpuCore(env)

    def proc(env):
        yield core.execute(1.0)
        yield env.timeout(10.0)  # idle gap
        yield core.execute(1.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(12.0)


def test_core_zero_cost_preserves_order():
    env = Environment()
    core = CpuCore(env)
    order = []

    def a(env):
        yield core.execute(5.0)
        order.append("a")

    def b(env):
        yield core.execute(0.0)
        order.append("b")

    env.process(a(env))
    env.process(b(env))
    env.run()
    assert order == ["a", "b"]


def test_core_negative_cost_rejected():
    env = Environment()
    core = CpuCore(env)
    with pytest.raises(SimulationError):
        core.execute(-1.0)
    with pytest.raises(SimulationError):
        core.charge(-1.0)


def test_core_charge_advances_availability():
    env = Environment()
    core = CpuCore(env)
    finish = core.charge(4.0)
    assert finish == pytest.approx(4.0)
    assert core.backlog == pytest.approx(4.0)
    assert core.busy_time == pytest.approx(4.0)


def test_core_utilization():
    env = Environment()
    core = CpuCore(env)

    def proc(env):
        yield core.execute(5.0)
        yield env.timeout(5.0)

    env.process(proc(env))
    env.run()
    assert core.utilization() == pytest.approx(0.5)


def test_core_busy_breakdown():
    env = Environment()
    core = CpuCore(env)
    core.charge(1.0, label="rx")
    core.charge(2.0, label="tx")
    core.charge(3.0, label="rx")
    assert core.busy_breakdown() == {"rx": 4.0, "tx": 2.0}
    assert core.task_count == 3


# ---------------------------------------------------------------- reactor ----
def test_reactor_attributes_work_to_pollers():
    env = Environment()
    reactor = Reactor(env)
    reactor.charge("transport", 1.5)
    reactor.charge("transport", 0.5)
    reactor.charge("nvme", 1.0)
    assert reactor.stats("transport").calls == 2
    assert reactor.stats("transport").busy_us == pytest.approx(2.0)
    assert reactor.stats("transport").mean_cost() == pytest.approx(1.0)
    assert reactor.stats("nvme").calls == 1


def test_reactor_unknown_poller():
    env = Environment()
    reactor = Reactor(env)
    with pytest.raises(ConfigError):
        reactor.stats("ghost")


def test_reactor_run_event():
    env = Environment()
    reactor = Reactor(env)

    def proc(env):
        yield reactor.run("p", 2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0)
    assert reactor.utilization() == pytest.approx(1.0)
