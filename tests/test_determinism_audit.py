"""Determinism audit: no hidden entropy sources, identical runs bit-match.

Every random draw in the simulator must come from a named
:class:`repro.simcore.rng.RandomStreams` stream — that is what makes
fault schedules replayable and A/B comparisons honest.  This module
enforces it two ways: a source scan for forbidden entropy APIs, and a
run-twice/compare-digests check over both protocol stacks.
"""

import re
from pathlib import Path

import pytest

from repro.cluster.scenario import Scenario, ScenarioConfig
from repro.workloads.mixes import tenants_for_ratio

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Entropy APIs that would silently break same-seed reproducibility.
FORBIDDEN = (
    (re.compile(r"^\s*(import random\b|from random import)"), "stdlib random module"),
    (re.compile(r"np\.random\.(?!Generator)"), "global numpy random state"),
    (re.compile(r"numpy\.random\.(?!Generator)"), "global numpy random state"),
    (re.compile(r"default_rng\(\s*\)"), "unseeded default_rng()"),
    (re.compile(r"\btime\.time\(|\bperf_counter\("), "wall-clock time"),
    (re.compile(r"os\.urandom|\buuid4\("), "OS entropy"),
)

#: The seeded stream factory is the one place numpy's RNG may be touched;
#: the experiment runner and the fuzz campaign read the wall clock only to
#: print progress timing, never to drive simulation state; the scenario
#: generator constructs explicitly-seeded ``random.Random(seed)`` instances
#: and never touches the module-level functions (generated programs are a
#: pure function of the seed — pinned by tests/test_scenario_fuzz_golden.py).
#: The parallel campaign runner reads the wall clock only for elapsed-time
#: provenance (``elapsed_s``/``attempts``/``worker_pid``), which the
#: differential suite pins as *excluded* from every campaign digest.  The
#: sharded runner reads the wall clock only for the per-phase timing
#: breakdown (``ShardedRunReport.timings``), which lives outside the
#: :class:`ScenarioResult` and therefore outside every digest — the sharded
#: differential suite pins digest equality against the serial path.
ALLOWED = {
    "simcore/rng.py",
    "experiments/runner.py",
    "experiments/fuzz.py",
    "scenarios/generate.py",
    "parallel/pool.py",
    "parallel/shards.py",
    "parallel/sweeps.py",
    "parallel/units.py",
}


def test_source_tree_has_no_unseeded_randomness():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        rel = path.relative_to(SRC_ROOT).as_posix()
        if rel in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for pattern, why in FORBIDDEN:
                if pattern.search(line):
                    offenders.append(f"{rel}:{lineno}: {why}: {line.strip()}")
    assert not offenders, "unseeded entropy found:\n" + "\n".join(offenders)


def _run(protocol, seed):
    cfg = ScenarioConfig(
        protocol=protocol,
        network_gbps=10.0,
        op_mix="read",
        total_ops=120,
        window_size=16,
        seed=seed,
    )
    scenario = Scenario.two_sided(cfg, tenants_for_ratio("1:2", op_mix="read"))
    return scenario.run()


@pytest.mark.parametrize("protocol", ["spdk", "nvme-opf"])
def test_identical_runs_produce_identical_metrics(protocol):
    one = _run(protocol, seed=9)
    two = _run(protocol, seed=9)
    assert one.metrics_digest() == two.metrics_digest()


def test_different_seeds_actually_differ():
    # Guards against a digest that ignores the metrics it claims to cover.
    one = _run("spdk", seed=9)
    other = _run("spdk", seed=10)
    assert one.metrics_digest() != other.metrics_digest()
