"""Tests for result export (CSV/JSON) and per-tenant reporting."""

import json
from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.metrics import read_csv, rows_for, to_row, write_csv, write_json


@dataclass
class FakePoint:
    name: str
    value: float
    tags: list


def test_to_row_dataclass_flattens_nested():
    row = to_row(FakePoint("a", 1.5, ["x", "y"]))
    assert row["name"] == "a"
    assert row["value"] == 1.5
    assert json.loads(row["tags"]) == ["x", "y"]


def test_to_row_dict_passthrough():
    assert to_row({"k": 1})["k"] == 1


def test_to_row_plain_object():
    class Obj:
        def __init__(self):
            self.a = 1
            self.b = "x"

        def method(self):  # pragma: no cover - must be excluded
            return 0

    row = to_row(Obj())
    assert row == {"a": 1, "b": "x"}


def test_rows_for_unifies_headers():
    rows = rows_for([{"a": 1}, {"b": 2}])
    assert set(rows[0]) == set(rows[1]) == {"a", "b"}
    assert rows[0]["b"] == ""
    assert rows_for([]) == []


def test_write_and_read_csv(tmp_path):
    points = [FakePoint("p1", 1.0, []), FakePoint("p2", 2.0, [3])]
    path = write_csv(tmp_path / "out" / "points.csv", points)
    assert path.exists()
    back = read_csv(path)
    assert len(back) == 2
    assert back[0]["name"] == "p1"
    assert float(back[1]["value"]) == 2.0


def test_write_json(tmp_path):
    path = write_json(tmp_path / "r.json", [FakePoint("p", 1.0, [])],
                      meta={"seed": 1})
    payload = json.loads(path.read_text())
    assert payload["meta"]["seed"] == 1
    assert payload["rows"][0]["name"] == "p"


def test_export_empty_rejected(tmp_path):
    with pytest.raises(ConfigError):
        write_csv(tmp_path / "x.csv", [])
    with pytest.raises(ConfigError):
        write_json(tmp_path / "x.json", [])


def test_export_figure_points_roundtrip(tmp_path):
    """End-to-end: export real figure points and read them back."""
    from repro.experiments import run_fig6c

    points = run_fig6c(windows=(16,), total_ops=64)
    path = write_csv(tmp_path / "fig6c.csv", points)
    back = read_csv(path)
    assert len(back) == len(points)
    assert {row["label"] for row in back} == {p.label for p in points}


def test_tenant_report():
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    cfg = ScenarioConfig(protocol="nvme-opf", total_ops=96, window_size=16,
                         warmup_us=0, seed=3)
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:2"))
    sc.run()
    report = sc.target_nodes[0].target.tenant_report()
    assert len(report) == 2
    for stats in report.values():
        assert stats["windows_flushed"] >= 96 // 16
        assert stats["requests_coalesced"] >= 96
        assert stats["notifications_saved"] > 0
        assert stats["queued_now"] == 0
        assert stats["mean_window"] > 1
