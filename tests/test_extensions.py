"""Tests for the extensions: urgent device qpairs + device-priority target."""


from repro.cluster import Scenario, ScenarioConfig
from repro.core import DevicePriorityOpfTarget
from repro.simcore import Environment, RandomStreams
from repro.ssd import NvmeSsd, SsdProfile
from repro.workloads import tenants_for_ratio


# ------------------------------------------------- urgent device qpairs ----
def test_urgent_qpair_preempts_dispatch_order():
    """With one channel busy and a backlog, urgent commands run first."""
    env = Environment()
    ssd = NvmeSsd(
        env,
        profile=SsdProfile(channels=1, read_mean_us=10.0, read_cv=0.0),
        streams=RandomStreams(1),
    )
    normal = ssd.create_qpair()
    urgent = ssd.create_qpair(urgent=True)
    order = []
    normal.on_completion = lambda c: order.append(("normal", c.cid))
    urgent.on_completion = lambda c: order.append(("urgent", c.cid))

    def workload(env):
        # Fill the single channel + queue a backlog of normal commands.
        for i in range(5):
            normal.read(1, slba=i, nlb=1)
        yield env.timeout(1.0)  # first normal command is now on the channel
        urgent.read(1, slba=100, nlb=1)

    env.process(workload(env))
    env.run()
    # The urgent command finishes right after the in-service command,
    # ahead of the four queued normal commands.
    assert order[1] == ("urgent", 0)
    assert [kind for kind, _ in order].count("normal") == 5


def test_urgent_qpair_no_starvation_of_completion():
    """Normal commands still complete when urgent traffic is present."""
    env = Environment()
    ssd = NvmeSsd(
        env, profile=SsdProfile(channels=2, read_cv=0.0), streams=RandomStreams(1)
    )
    normal = ssd.create_qpair()
    urgent = ssd.create_qpair(urgent=True)
    done = {"normal": 0, "urgent": 0}
    normal.on_completion = lambda c: done.__setitem__("normal", done["normal"] + 1)
    urgent.on_completion = lambda c: done.__setitem__("urgent", done["urgent"] + 1)
    for i in range(20):
        normal.read(1, slba=i, nlb=1)
        urgent.read(1, slba=i, nlb=1)
    env.run()
    assert done == {"normal": 20, "urgent": 20}


# ------------------------------------------- device-priority oPF target ----
def _run(target_cls=None, seed=3):
    cfg = ScenarioConfig(
        protocol="nvme-opf",
        network_gbps=100,
        op_mix="read",
        total_ops=400,
        window_size=32,
        warmup_us=200,
        seed=seed,
        target_cls=target_cls,
    )
    sc = Scenario.two_sided(cfg, tenants_for_ratio("1:3"))
    return sc, sc.run()


def test_device_priority_target_slashes_ls_tail():
    _, plain = _run()
    sc, devprio = _run(target_cls=DevicePriorityOpfTarget)
    target = sc.target_nodes[0].target
    assert isinstance(target, DevicePriorityOpfTarget)
    assert target.urgent_submissions > 0
    # The urgent class removes the device queue from the LS path entirely.
    assert devprio.ls_tail_us < plain.ls_tail_us * 0.5
    # Throughput-critical traffic keeps most of its gains.
    assert devprio.tc_throughput_mbps > plain.tc_throughput_mbps * 0.85


def test_device_priority_tc_path_unchanged():
    """TC requests still coalesce identically under the extension."""
    _, plain = _run()
    _, devprio = _run(target_cls=DevicePriorityOpfTarget)
    assert devprio.coalesced_notifications == plain.coalesced_notifications


def test_device_priority_correctness():
    sc, devprio = _run(target_cls=DevicePriorityOpfTarget)
    for gen in sc.generators:
        assert gen.failed == 0
        assert gen.inflight == 0
