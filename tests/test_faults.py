"""Fault-injection subsystem: schedules, adapters, injector, chaos runs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scenario import Scenario, ScenarioConfig
from repro.errors import FaultError
from repro.faults import (
    ComponentRegistry,
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    Injector,
    KIND_LINK_DOWN,
    RetryPolicy,
)
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.net.switch import Switch
from repro.simcore.engine import Environment
from repro.simcore.rng import RandomStreams
from repro.ssd.controller import NvmeController
from repro.ssd.latency import SsdProfile
from repro.ssd.queues import STATUS_INTERNAL_ERROR
from repro.workloads.mixes import tenants_for_ratio


# -- schedule construction ---------------------------------------------------------
class TestFaultSchedule:
    def test_fluent_builders_cover_every_kind(self):
        sched = (
            FaultSchedule()
            .link_flap("a->sw", 10.0, 5.0)
            .link_degrade("a->sw", 20.0, 5.0, scale=0.5)
            .link_loss_burst("a->sw", 30.0, 5.0, p=0.2)
            .nic_down("a", 40.0, 5.0)
            .switch_pressure("sw", 50.0, 5.0, scale=0.25)
            .ssd_latency_spike("t/ssd0", 60.0, 5.0, scale=4.0)
            .ssd_transient_error("t/ssd0", 70.0, 5.0)
            .target_crash("t", 80.0, 5.0)
            .qpair_disconnect("tenant0", 90.0)
        )
        assert len(sched) == len(FAULT_KINDS) == 9
        assert sorted({ev.kind for ev in sched}) == sorted(FAULT_KINDS)

    def test_ordered_sorts_by_time_with_stable_ties(self):
        sched = (
            FaultSchedule()
            .link_flap("b", 50.0, 1.0)
            .link_flap("a", 10.0, 1.0)
            .nic_down("c", 10.0, 1.0)  # same time as "a": insertion order wins
        )
        assert [(ev.at_us, ev.target) for ev in sched.ordered()] == [
            (10.0, "a"), (10.0, "c"), (50.0, "b"),
        ]

    def test_validation_rejects_bad_events(self):
        with pytest.raises(FaultError):
            FaultEvent(at_us=-1.0, kind=KIND_LINK_DOWN, target="a")
        with pytest.raises(FaultError):
            FaultEvent(at_us=0.0, kind="volcano", target="a")
        with pytest.raises(FaultError):
            FaultEvent(at_us=0.0, kind=KIND_LINK_DOWN, target="")
        with pytest.raises(FaultError):
            FaultSchedule().link_degrade("a", 0.0, 1.0, scale=0.0)
        with pytest.raises(FaultError):
            FaultSchedule().link_loss_burst("a", 0.0, 1.0, p=1.5)
        with pytest.raises(FaultError):
            FaultSchedule().ssd_latency_spike("s", 0.0, 1.0, scale=0.5)
        with pytest.raises(FaultError):
            FaultSchedule().target_crash("t", 0.0, 0.0)

    def test_params_are_canonical(self):
        ev = FaultSchedule().add(KIND_LINK_DOWN, "a", 1.0, 2.0, zeta=1.0, alpha=2.0).events[0]
        assert ev.params == (("alpha", 2.0), ("zeta", 1.0))
        assert ev.param("zeta") == 1.0
        assert ev.param("missing", 7.0) == 7.0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_schedule_is_seed_deterministic(self, seed):
        kw = dict(
            duration_us=10_000.0,
            links=["a->sw", "sw->a"],
            nics=["a"],
            switches=["sw"],
            ssds=["t/ssd0"],
            targets=["t"],
            initiators=["tenant0"],
        )
        one = FaultSchedule.random(seed, **kw)
        two = FaultSchedule.random(seed, **kw)
        assert one.encode() == two.encode()

    def test_random_schedule_needs_components_and_horizon(self):
        with pytest.raises(FaultError):
            FaultSchedule.random(1, duration_us=100.0)
        with pytest.raises(FaultError):
            FaultSchedule.random(1, duration_us=0.0, links=["a"])


# -- registry ----------------------------------------------------------------------
class TestComponentRegistry:
    def test_add_get_names(self):
        reg = ComponentRegistry()
        reg.add("link", "a->sw", object())
        reg.add("link", "sw->a", object())
        assert reg.names("link") == ["a->sw", "sw->a"]
        assert len(reg) == 2

    def test_duplicate_and_unknown_raise(self):
        reg = ComponentRegistry()
        reg.add("nic", "a", object())
        with pytest.raises(FaultError):
            reg.add("nic", "a", object())
        with pytest.raises(FaultError, match="registered: \\['a'\\]"):
            reg.get("nic", "b")


# -- adapters against live components ----------------------------------------------
def _injector(env, sched, registry, seed=3):
    return Injector(env, sched, registry, rng=RandomStreams(seed).stream("faults/loss"))


class TestAdapters:
    def test_link_flap_downs_link_then_restores(self):
        env = Environment()
        link = Link(env, rate_gbps=10.0, propagation_us=1.0, queue_packets=4, name="a->sw")
        link.connect(lambda packet: None)
        reg = ComponentRegistry()
        reg.add("link", "a->sw", link)
        inj = _injector(env, FaultSchedule().link_flap("a->sw", 10.0, 20.0), reg)
        inj.start()

        env.run(until=11.0)
        assert not link.up
        link.send(Packet(src="a", dst="b", conn_id=1, kind="data", length=100))
        assert link.stats.fault_drops == 1 and link.stats.dropped == 1
        env.run(until=31.0)
        assert link.up
        link.send(Packet(src="a", dst="b", conn_id=1, kind="data", length=100))
        assert link.stats.fault_drops == 1  # delivered this time
        assert inj.faults_injected == 1 and inj.faults_reverted == 1

    def test_link_degrade_scales_rate_and_reverts(self):
        env = Environment()
        link = Link(env, rate_gbps=10.0, propagation_us=1.0, queue_packets=4, name="l")
        base = link.rate
        reg = ComponentRegistry()
        reg.add("link", "l", link)
        inj = _injector(env, FaultSchedule().link_degrade("l", 5.0, 10.0, scale=0.25), reg)
        inj.start()
        env.run(until=6.0)
        assert link.rate == pytest.approx(base * 0.25)
        env.run(until=16.0)
        assert link.rate == pytest.approx(base)

    def test_link_loss_burst_installs_seeded_filter(self):
        env = Environment()
        link = Link(env, rate_gbps=10.0, propagation_us=1.0, queue_packets=64, name="l")
        link.connect(lambda packet: None)
        reg = ComponentRegistry()
        reg.add("link", "l", link)
        inj = _injector(env, FaultSchedule().link_loss_burst("l", 1.0, 100.0, p=0.5), reg)
        inj.start()
        env.run(until=2.0)
        assert link.drop_filter is not None
        for _ in range(200):
            link.send(Packet(src="a", dst="b", conn_id=1, kind="data", length=10))
        assert 0 < link.stats.fault_drops < 200  # ~p, seeded
        env.run(until=200.0)
        assert link.drop_filter is None

    def test_link_loss_without_rng_is_an_error(self):
        env = Environment()
        link = Link(env, rate_gbps=10.0, propagation_us=1.0, queue_packets=4, name="l")
        reg = ComponentRegistry()
        reg.add("link", "l", link)
        inj = Injector(env, FaultSchedule().link_loss_burst("l", 1.0, 5.0, p=0.5), reg)
        inj.start()
        with pytest.raises(FaultError, match="seeded rng"):
            env.run()

    def test_nic_down_drops_both_directions(self):
        env = Environment()
        link = Link(env, rate_gbps=10.0, propagation_us=1.0, queue_packets=4, name="l")
        nic = Nic(env, "a", egress=link)
        reg = ComponentRegistry()
        reg.add("nic", "a", nic)
        inj = _injector(env, FaultSchedule().nic_down("a", 10.0, 10.0), reg)
        inj.start()
        env.run(until=11.0)
        packet = Packet(src="a", dst="b", conn_id=1, kind="data", length=10)
        assert nic.transmit(packet) is False
        nic.receive(packet)
        assert nic.tx_dropped == 1 and nic.rx_dropped == 1
        env.run(until=25.0)
        assert not nic.fault_down

    def test_ssd_spike_and_transient_error(self):
        env = Environment()
        streams = RandomStreams(5)
        ctrl = NvmeController(env, profile=SsdProfile(), rng=streams.stream("ssd/t"))
        reg = ComponentRegistry()
        reg.add("ssd", "t/ssd0", ctrl)
        sched = (
            FaultSchedule()
            .ssd_latency_spike("t/ssd0", 10.0, 10.0, scale=8.0)
            .ssd_transient_error("t/ssd0", 30.0, 10.0)
        )
        inj = _injector(env, sched, reg)
        inj.start()
        env.run(until=11.0)
        assert ctrl.service_scale == 8.0
        env.run(until=21.0)
        assert ctrl.service_scale == 1.0
        env.run(until=31.0)
        assert ctrl.fault_status == STATUS_INTERNAL_ERROR
        env.run(until=41.0)
        assert ctrl.fault_status is None

    def test_switch_pressure_shrinks_every_port_queue(self):
        env = Environment()
        sw = Switch(env, forwarding_delay_us=0.5, name="sw")
        links = {}
        for node in ("a", "b"):
            link = Link(env, rate_gbps=10.0, propagation_us=1.0,
                        queue_packets=8, name=f"sw->{node}")
            sw.attach(node, link)
            links[node] = link
        reg = ComponentRegistry()
        reg.add("switch", "sw", sw)
        inj = _injector(env, FaultSchedule().switch_pressure("sw", 5.0, 10.0, scale=0.25), reg)
        inj.start()
        env.run(until=6.0)
        assert all(link.queue_limit == 2 for link in links.values())
        env.run(until=16.0)
        assert all(link.queue_limit == 8 for link in links.values())

    def test_qpair_disconnect_severs_the_initiator(self):
        class FakeInitiator:
            disconnected = 0

            def force_disconnect(self):
                self.disconnected += 1

        env = Environment()
        fake = FakeInitiator()
        reg = ComponentRegistry()
        reg.add("initiator", "tenant0", fake)
        inj = _injector(env, FaultSchedule().qpair_disconnect("tenant0", 5.0), reg)
        inj.start()
        env.run()
        assert fake.disconnected == 1
        assert inj.faults_injected == 1
        assert inj.faults_reverted == 0  # instantaneous: recovery reconnects

    def test_unknown_fault_target_raises_with_known_names(self):
        env = Environment()
        reg = ComponentRegistry()
        inj = _injector(env, FaultSchedule().link_flap("ghost", 1.0, 1.0), reg)
        inj.start()
        with pytest.raises(FaultError, match="no link component"):
            env.run()

    def test_injector_cannot_start_twice(self):
        env = Environment()
        inj = _injector(env, FaultSchedule(), ComponentRegistry())
        inj.start()
        with pytest.raises(FaultError):
            inj.start()


# -- full chaos scenario (the ISSUE acceptance run) --------------------------------
def _chaos_schedule():
    return (
        FaultSchedule()
        .link_flap("sw->client0", 300.0, 150.0)
        .ssd_latency_spike("target0/ssd0", 600.0, 300.0, scale=8.0)
        .target_crash("target0", 1_100.0, 400.0)
    )


def _run_scenario(chaos, policy, seed=1):
    cfg = ScenarioConfig(
        protocol="spdk",
        network_gbps=10.0,
        op_mix="read",
        total_ops=200,
        window_size=16,
        seed=seed,
        chaos=chaos,
        retry_policy=policy,
    )
    scenario = Scenario.two_sided(cfg, tenants_for_ratio("1:2", op_mix="read"))
    return scenario.run()


class TestChaosScenario:
    def test_storm_completes_every_command_deterministically(self):
        policy = RetryPolicy(
            timeout_us=400.0,
            backoff_base_us=50.0,
            reconnect_delay_us=50.0,
            handshake_timeout_us=200.0,
        )
        calm = _run_scenario(None, None)
        storm = _run_scenario(_chaos_schedule(), policy)
        replay = _run_scenario(_chaos_schedule(), policy)

        # Chaos actually bit: faults were injected and recovery ran.
        assert storm.fault_events["fault/target.crash/inject"] == 1
        assert storm.recovery["timeouts"] > 0
        assert storm.recovery["retries"] > 0
        assert storm.tc_throughput_mbps < calm.tc_throughput_mbps

        # Zero lost commands: every submission completed or was reported.
        assert storm.goodput_ops > 0
        calm_total = calm.goodput_ops + calm.failed_ops
        storm_total = storm.goodput_ops + storm.failed_ops
        assert storm_total == calm_total

        # Same seed, same storm: byte-identical metrics and fault traces.
        assert storm.metrics_digest() == replay.metrics_digest()
        assert storm.fault_trace == replay.fault_trace

    def test_injector_trace_replay_is_byte_identical(self):
        policy = RetryPolicy(timeout_us=400.0, backoff_base_us=50.0)
        sched = FaultSchedule.random(
            11,
            duration_us=1_500.0,
            links=["client0->sw", "sw->client0"],
            ssds=["target0/ssd0"],
            mean_events=5.0,
            mean_fault_us=200.0,
        )
        one = _run_scenario(sched, policy)
        two = _run_scenario(sched, policy)
        assert one.fault_trace == two.fault_trace
        assert one.metrics_digest() == two.metrics_digest()

    def test_empty_schedule_leaves_scenario_untouched(self):
        baseline = _run_scenario(None, None)
        noop = _run_scenario(FaultSchedule(), None)
        assert noop.metrics_digest() == baseline.metrics_digest()
