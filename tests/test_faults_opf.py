"""Chaos under NVMe-oPF: the fault matrix of test_faults.py, window-coalesced.

Before the drain protocol was hardened, ``protocol="nvme-opf"`` could not
survive a fault schedule at all: a retried window member double-registered
its CID (``ProtocolError: CID already queued``), a lost coalesced response
wedged the window forever, and a replayed one double-retired it.  These
tests pin the lifted restriction: the full chaos storm, the qpair
disconnect + loss-burst schedule, and each single fault kind all complete
with zero lost commands, clean windows, byte-identical same-seed reruns,
and tenant fairness within tolerance of the calm run.
"""

import pytest

from repro.faults import FaultSchedule, RetryPolicy
from tests.conftest import build_fig7_cell

POLICY = RetryPolicy(
    timeout_us=400.0,
    backoff_base_us=50.0,
    reconnect_delay_us=50.0,
    handshake_timeout_us=200.0,
)


def _storm_schedule():
    """The test_faults.py chaos storm, unchanged."""
    return (
        FaultSchedule()
        .link_flap("sw->client0", 300.0, 150.0)
        .ssd_latency_spike("target0/ssd0", 600.0, 300.0, scale=8.0)
        .target_crash("target0", 1_100.0, 400.0)
    )


def _disconnect_schedule():
    """The ISSUE acceptance shape: qpair disconnects + a loss burst."""
    return (
        FaultSchedule()
        .qpair_disconnect("tc0", 400.0)
        .link_loss_burst("sw->client0", 700.0, 300.0, p=0.3)
        .qpair_disconnect("tc1", 900.0)
    )


def _build(chaos, policy, seed=1):
    return build_fig7_cell(seed=seed, chaos=chaos, retry_policy=policy)


def _run(chaos, policy, seed=1):
    return _build(chaos, policy, seed=seed).run()


def _assert_windows_clean(scenario):
    """Post-run drain-protocol invariant: nothing stranded anywhere.

    Every initiator's qpair is empty (all commands completed or reported)
    and every window queue is fully retired — each TC CID exactly once:
    pushed == drained + evicted, with no member left behind.
    """
    for inode in scenario.initiator_nodes.values():
        for initiator in inode.initiators:
            assert initiator.qpair.outstanding == 0
            pm = getattr(initiator, "pm", None)
            if pm is None:
                continue
            q = pm.cid_queue
            assert len(q) == 0
            assert q.total_pushed == q.total_drained + q.total_evicted


class TestOpfChaosStorm:
    def test_storm_completes_with_zero_lost_commands(self):
        calm = _run(None, None)
        scenario = _build(_storm_schedule(), POLICY)
        storm = scenario.run()

        # Chaos actually bit, and the drain protocol was exercised.
        assert storm.fault_events["fault/target.crash/inject"] == 1
        assert storm.recovery["timeouts"] > 0
        assert storm.recovery["retries"] > 0
        assert storm.opf["duplicate_drains"] > 0

        # Zero lost commands: no failures, nothing stranded in a window.
        assert storm.failed_ops == 0
        assert storm.goodput_ops >= calm.goodput_ops
        _assert_windows_clean(scenario)

        # Fairness between the TC tenants survives the storm.
        assert calm.fairness_index is not None
        assert storm.fairness_index == pytest.approx(calm.fairness_index, abs=0.05)

    def test_storm_is_digest_stable_across_reruns(self):
        one = _run(_storm_schedule(), POLICY)
        two = _run(_storm_schedule(), POLICY)
        assert one.metrics_digest() == two.metrics_digest()
        assert one.fault_trace == two.fault_trace

    def test_no_chaos_books_are_empty(self):
        calm = _run(None, None)
        assert calm.opf == {key: 0 for key in calm.opf}
        noop = _run(FaultSchedule(), None)
        assert noop.metrics_digest() == calm.metrics_digest()


class TestOpfDisconnectResync:
    def test_reconnect_resyncs_the_window_state(self):
        scenario = _build(_disconnect_schedule(), POLICY)
        result = scenario.run()
        assert result.recovery["disconnects"] == 2
        assert result.recovery["reconnects"] == 2
        # Each reconnect handshake carried a bumped epoch the target saw.
        assert result.opf["resyncs"] == 2
        assert result.failed_ops == 0
        _assert_windows_clean(scenario)

    def test_disconnect_run_is_digest_stable(self):
        one = _run(_disconnect_schedule(), POLICY)
        two = _run(_disconnect_schedule(), POLICY)
        assert one.metrics_digest() == two.metrics_digest()


#: One schedule per fault kind (targets exist in the two_sided topology).
_MATRIX = {
    "link_flap": lambda s: s.link_flap("sw->client0", 300.0, 150.0),
    "link_degrade": lambda s: s.link_degrade("client0->sw", 300.0, 300.0, scale=0.25),
    "link_loss_burst": lambda s: s.link_loss_burst("sw->client0", 300.0, 300.0, p=0.3),
    "nic_down": lambda s: s.nic_down("client0", 300.0, 150.0),
    "switch_pressure": lambda s: s.switch_pressure("sw", 300.0, 400.0, scale=0.25),
    "ssd_latency_spike": lambda s: s.ssd_latency_spike(
        "target0/ssd0", 300.0, 300.0, scale=8.0
    ),
    "ssd_transient_error": lambda s: s.ssd_transient_error("target0/ssd0", 300.0, 200.0),
    "target_crash": lambda s: s.target_crash("target0", 300.0, 400.0),
    "qpair_disconnect": lambda s: s.qpair_disconnect("tc0", 300.0),
}


class TestOpfFaultMatrix:
    @pytest.mark.parametrize("kind", sorted(_MATRIX))
    def test_single_fault_completes_cleanly(self, kind):
        schedule = _MATRIX[kind](FaultSchedule())
        scenario = _build(schedule, POLICY)
        result = scenario.run()
        assert result.fault_events[f"fault/{schedule.events[0].kind}/inject"] == 1
        assert result.failed_ops == 0
        _assert_windows_clean(scenario)

    @pytest.mark.parametrize("kind", sorted(_MATRIX))
    def test_single_fault_digest_is_seed_stable(self, kind):
        one = _run(_MATRIX[kind](FaultSchedule()), POLICY)
        two = _run(_MATRIX[kind](FaultSchedule()), POLICY)
        assert one.metrics_digest() == two.metrics_digest()
