"""Extended smoke/format tests for the figure harnesses and flush path."""


from repro.cluster.node import InitiatorNode, TargetNode
from repro.net import Fabric
from repro.simcore import Environment, RandomStreams


# ------------------------------------------------------------ fig formats ----
def test_fig6a_includes_spdk_reference_and_all_windows():
    from repro.experiments import run_fig6a

    points = run_fig6a(windows=(1, 8), speeds=(100.0,), total_ops=80)
    protocols = [(p.protocol, p.window) for p in points]
    assert ("spdk", 0) in protocols
    assert ("nvme-opf", 1) in protocols
    assert ("nvme-opf", 8) in protocols
    assert all(p.tc_throughput_mbps > 0 for p in points)
    assert all(p.ls_mean_latency_us > 0 for p in points)


def test_fig7_format_contains_all_cells():
    from repro.experiments import format_fig7, run_fig7

    points = run_fig7(ratios=("1:1",), speeds=(100.0,), mixes=("read", "write"),
                      total_ops=60)
    text = format_fig7(points)
    assert "read" in text and "write" in text
    assert "tput +%" in text and "tail -%" in text
    assert text.count("\n") >= 5


def test_fig8_format_and_gain_helper():
    from repro.experiments import curve_gain_at_max_scale, format_fig8, run_fig8

    curves = run_fig8(mixes=("read",), patterns=(2,), pairs_range=[1, 2], total_ops=60)
    text = format_fig8(curves)
    assert "panel" in text
    gain = curve_gain_at_max_scale(curves, "d")
    assert isinstance(gain, float)


def test_fig9_format():
    from repro.experiments import format_fig9, run_fig9

    points = run_fig9(modes=("write",), patterns=(2,), n_node_pairs=1,
                      ranks_per_node_max=2, particles_per_rank=4096,
                      timesteps=1, dataset_load_us=0.0)
    text = format_fig9(points)
    assert "ranks" in text and "oPF MB/s" in text


def test_sensitivity_sweeps_return_points():
    from repro.experiments.sensitivity import (
        format_sensitivity,
        sweep_conn_switch_cost,
        sweep_cpu_cost_scale,
    )

    points = sweep_cpu_cost_scale(factors=(1.0,), total_ops=60)
    points += sweep_conn_switch_cost(values=(0.5,), total_ops=60)
    assert len(points) == 2
    assert all(p.spdk_mbps > 0 and p.opf_mbps > 0 for p in points)
    text = format_sensitivity(points)
    assert "cpu_cost_scale" in text and "conn_switch_cost" in text


# -------------------------------------------------------------- flush path ----
def make_rig(protocol):
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, RandomStreams(41), protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    initiator = inode.add_initiator("app", tnode, protocol=protocol, queue_depth=16,
                                    window_size=4)
    env.run(until=initiator.connect())
    return env, initiator, tnode


def test_baseline_flush_reaches_device():
    env, initiator, tnode = make_rig("spdk")
    req = initiator.submit("flush", priority="latency")
    env.run()
    assert req.done and req.status == 0
    # A real device flush executed (50us service in the profile).
    assert req.latency > tnode.ssds[0].profile.flush_us


def test_opf_ls_flush_reaches_device():
    """A latency-sensitive flush (no drain flag) is a real device flush."""
    env, initiator, tnode = make_rig("nvme-opf")
    req = initiator.submit("flush", priority="latency")
    env.run()
    assert req.done and req.status == 0
    assert req.latency > tnode.ssds[0].profile.flush_us


def test_opf_tc_flush_queues_like_other_tc_requests():
    """A TC flush without the draining flag parks in the tenant queue and
    executes with the window, as a device flush."""
    env, initiator, tnode = make_rig("nvme-opf")
    reqs = [initiator.read(slba=i, priority="throughput") for i in range(2)]
    flush = initiator.submit("flush", priority="throughput")
    fourth = initiator.read(slba=9, priority="throughput")  # window of 4 -> drain
    env.run()
    assert all(r.done for r in reqs + [flush, fourth])
    assert tnode.ssds[0].controller.commands_completed == 4  # flush hit the device
