"""Golden-figure regression: seed-era results must survive the fault layer.

The pinned numbers were captured from the repo *before* the fault-injection
subsystem landed (scaled-down Figure-7 shape: 1:2 tenant ratio, read mix,
10 Gbps, 200 ops/TC-tenant, window 16, seed 1).  Chaos support is required
to be zero-cost when disabled, so a scenario built without ``chaos=`` /
``retry_policy=`` must reproduce them — within 1% for the rate/latency
metrics, exactly for the event counts.
"""

import hashlib

import pytest

from repro.faults import RetryPolicy
from tests.conftest import build_fig7_cell

GOLDEN = {
    "spdk": {
        "tc_throughput_mbps": 1068.6327721007478,
        "ls_tail_us": 1161.6099999999867,
        "completion_notifications": 403,
    },
    "nvme-opf": {
        "tc_throughput_mbps": 1217.7481742262694,
        "ls_tail_us": 803.2880000000087,
        "completion_notifications": 30,
    },
}

#: sha256 of the full no-chaos nvme-opf metrics digest, captured BEFORE the
#: drain protocol was hardened for chaos.  The hardening is required to be
#: byte-invisible on the fault-free path: oPF digest lines appear only when
#: a counter is nonzero, so this pin must never move.
GOLDEN_OPF_DIGEST_SHA256 = (
    "9909aa02bf9d85b9cd79f8917b564d90a44b76d5f5281ccbdce5dfe238a8ad86"
)


def run(protocol, retry_policy=None):
    return build_fig7_cell(protocol=protocol, retry_policy=retry_policy).run()


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_no_chaos_run_matches_seed_golden(protocol):
    result = run(protocol)
    golden = GOLDEN[protocol]
    assert result.tc_throughput_mbps == pytest.approx(
        golden["tc_throughput_mbps"], rel=0.01
    )
    assert result.ls_tail_us == pytest.approx(golden["ls_tail_us"], rel=0.01)
    assert result.completion_notifications == golden["completion_notifications"]
    # No chaos was configured: the fault/recovery books must be empty.
    assert result.fault_trace == ""
    assert result.fault_events == {}
    assert result.failed_ops == 0


def test_no_chaos_opf_digest_is_bit_identical_to_pre_hardening():
    """The chaos-safe drain protocol costs nothing when chaos is off."""
    digest = run("nvme-opf").metrics_digest()
    assert hashlib.sha256(digest.encode()).hexdigest() == GOLDEN_OPF_DIGEST_SHA256


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_idle_retry_policy_does_not_move_the_numbers(protocol):
    """Armed watchdogs with no faults: timing must be bit-identical.

    For nvme-opf this also arms the drain watchdog — a healthy run's
    coalesced responses always beat its deadline, so no forced drain ever
    fires and the digest cannot move.
    """
    plain = run(protocol)
    armed = run(protocol, retry_policy=RetryPolicy())
    assert armed.metrics_digest() == plain.metrics_digest()
    assert armed.recovery["timeouts"] == 0
    assert armed.recovery["retries"] == 0
