"""Direct tests of the h5bench kernel (Figure 9's workload engine)."""

import pytest

from repro.cluster.node import InitiatorNode, TargetNode
from repro.hdf5sim import Communicator, H5File, SimRank
from repro.net import Fabric
from repro.simcore import Environment, RandomStreams
from repro.workloads.h5bench import H5BenchConfig, H5BenchKernel, aggregate_bandwidth_mbps


def make_cluster(n_ranks=2, protocol="nvme-opf", config=None):
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, RandomStreams(19), protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    comm = Communicator(env, n_ranks)
    cfg = config or H5BenchConfig(
        mode="write", particles_per_rank=4096, timesteps=2,
        compute_us=10.0, dataset_load_us=50.0, queue_depth=32,
    )
    kernels = []
    connects = []
    for rank in range(n_ranks):
        initiator = inode.add_initiator(
            f"rank{rank}", tnode, protocol=protocol, queue_depth=cfg.queue_depth,
            window_size=8,
        )
        connects.append(initiator.connect())
        h5file = H5File(f"r{rank}.h5", base_lba=rank * 4096, capacity_blocks=4096)
        kernels.append(
            H5BenchKernel(env, cfg, initiator, h5file, comm, rank=rank,
                          metadata_rank=(rank == 0))
        )
    env.run(until=env.all_of(connects))
    ranks = [SimRank(env, k.rank, comm, k.body) for k in kernels]
    env.run(until=env.all_of([r.done for r in ranks]))
    env.run()
    return env, kernels, tnode


def test_write_kernel_moves_expected_bytes():
    env, kernels, _ = make_cluster()
    for kernel in kernels:
        result = kernel.result
        assert result is not None
        # 4096 particles x 8 B x 2 timesteps.
        assert result.bytes_moved == 4096 * 8 * 2
        assert result.elapsed_us > 0


def test_only_metadata_rank_issues_metadata():
    env, kernels, _ = make_cluster(n_ranks=3)
    assert kernels[0].result.metadata_ops == 2  # one per timestep
    assert kernels[1].result.metadata_ops == 0
    assert kernels[2].result.metadata_ops == 0
    assert kernels[0].vol.metadata_requests == 2


def test_read_kernel_pays_dataset_loading():
    cfg_loaded = H5BenchConfig(
        mode="read", particles_per_rank=4096, timesteps=2,
        compute_us=0.0, dataset_load_us=2_000.0, queue_depth=32,
    )
    cfg_free = H5BenchConfig(
        mode="read", particles_per_rank=4096, timesteps=2,
        compute_us=0.0, dataset_load_us=0.0, queue_depth=32,
    )
    _, loaded, _ = make_cluster(config=cfg_loaded)
    _, free, _ = make_cluster(config=cfg_free)
    slow = max(k.result.elapsed_us for k in loaded)
    fast = max(k.result.elapsed_us for k in free)
    assert slow >= fast + 2 * 2_000.0 * 0.9  # both timesteps paid the load


def test_barriers_synchronize_timesteps():
    env, kernels, _ = make_cluster(n_ranks=2)
    # Both ranks finish the whole job at the same barrier.
    ends = [k.result.elapsed_us for k in kernels]
    assert ends[0] == pytest.approx(ends[1], rel=0.01)


def test_aggregate_bandwidth_from_kernels():
    env, kernels, _ = make_cluster()
    bw = aggregate_bandwidth_mbps([k.result for k in kernels])
    assert bw > 0


def test_kernel_coalesces_on_opf_target():
    env, kernels, tnode = make_cluster()
    assert tnode.target.stats.coalesced_notifications > 0
    # Metadata writes were latency-sensitive bypasses.
    assert tnode.target.pm.ls_bypassed >= 2
