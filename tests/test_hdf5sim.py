"""Tests for the HDF5 substrate: files, datasets, VOL, MPI ranks."""

import pytest

from repro.errors import ConfigError, Hdf5Error
from repro.hdf5sim import Communicator, Dataset, H5File, METADATA_BLOCKS, SimRank, spawn_ranks
from repro.simcore import Environment


# ---------------------------------------------------------------- dataset ----
def test_dataset_geometry():
    ds = Dataset("d", n_elements=1000, element_size=8, base_lba=100)
    assert ds.nbytes == 8000
    assert ds.nblocks == 2  # 8000 / 4096 rounded up


def test_element_range_to_extent():
    ds = Dataset("d", n_elements=4096, element_size=8, base_lba=10)
    # Elements 0..511 = bytes 0..4095 = block 0.
    ext = ds.element_range_to_extent(0, 512)
    assert (ext.slba, ext.nlb) == (10, 1)
    # Elements 512..1023 = block 1.
    ext = ds.element_range_to_extent(512, 512)
    assert (ext.slba, ext.nlb) == (11, 1)
    # Straddling a boundary needs both blocks.
    ext = ds.element_range_to_extent(500, 24)
    assert (ext.slba, ext.nlb) == (10, 2)


def test_element_range_validation():
    ds = Dataset("d", n_elements=100, element_size=8, base_lba=0)
    with pytest.raises(Hdf5Error):
        ds.element_range_to_extent(90, 20)
    with pytest.raises(Hdf5Error):
        ds.element_range_to_extent(-1, 5)
    with pytest.raises(Hdf5Error):
        ds.element_range_to_extent(0, 0)


def test_io_plan_splits_into_requests():
    ds = Dataset("d", n_elements=4096 * 4, element_size=8, base_lba=0)
    plan = ds.io_plan(0, 4096 * 4, io_blocks=1)  # 32 blocks of data
    assert len(plan) == 32
    assert all(e.nlb == 1 for e in plan)
    assert [e.slba for e in plan] == list(range(32))
    plan8 = ds.io_plan(0, 4096 * 4, io_blocks=8)
    assert len(plan8) == 4
    assert plan8[0].nbytes == 8 * 4096


def test_dataset_validation():
    with pytest.raises(Hdf5Error):
        Dataset("", 10, 8, 0)
    with pytest.raises(Hdf5Error):
        Dataset("d", 0, 8, 0)
    with pytest.raises(Hdf5Error):
        Dataset("d", 10, 8, -1)


# ------------------------------------------------------------------- file ----
def test_file_allocates_contiguous_datasets():
    f = H5File("test.h5", base_lba=0, capacity_blocks=100)
    d1 = f.create_dataset("a", n_elements=512, element_size=8)  # 1 block
    d2 = f.create_dataset("b", n_elements=512, element_size=8)
    assert d1.base_lba == METADATA_BLOCKS
    assert d2.base_lba == METADATA_BLOCKS + 1
    assert f.dataset("a") is d1


def test_file_space_exhaustion():
    f = H5File("t.h5", base_lba=0, capacity_blocks=METADATA_BLOCKS + 2)
    f.create_dataset("a", n_elements=1024, element_size=8)  # 2 blocks
    with pytest.raises(Hdf5Error):
        f.create_dataset("b", n_elements=1, element_size=8)


def test_file_duplicate_dataset_rejected():
    f = H5File("t.h5", base_lba=0, capacity_blocks=100)
    f.create_dataset("a", 10, 8)
    with pytest.raises(Hdf5Error):
        f.create_dataset("a", 10, 8)
    with pytest.raises(Hdf5Error):
        f.dataset("ghost")


def test_file_too_small():
    with pytest.raises(Hdf5Error):
        H5File("t.h5", base_lba=0, capacity_blocks=METADATA_BLOCKS)


def test_metadata_region():
    f = H5File("t.h5", base_lba=50, capacity_blocks=100)
    assert f.superblock_lba == 50
    assert len(f.metadata_lbas) == METADATA_BLOCKS


# -------------------------------------------------------------------- MPI ----
def test_barrier_releases_all_ranks_together():
    env = Environment()
    comm = Communicator(env, 3)
    times = []

    def body(rank_obj):
        yield rank_obj.env.timeout(rank_obj.rank * 10.0)  # stagger arrivals
        yield rank_obj.comm.barrier()
        times.append((rank_obj.rank, rank_obj.env.now))

    _ranks = [SimRank(env, i, comm, body) for i in range(3)]
    env.run()
    assert all(t == 20.0 for _, t in times)  # all released at the last arrival


def test_barrier_reusable_across_timesteps():
    env = Environment()
    comm = Communicator(env, 2)
    log = []

    def body(rank_obj):
        for ts in range(3):
            yield rank_obj.env.timeout(1.0 + rank_obj.rank)
            yield rank_obj.comm.barrier()
            log.append((ts, rank_obj.rank))

    for i in range(2):
        SimRank(env, i, comm, body)
    env.run()
    assert comm.barriers_completed == 3
    # Within each timestep both ranks are released before the next begins.
    assert log == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]


def test_spawn_ranks():
    env = Environment()

    def body(rank_obj):
        yield rank_obj.comm.barrier()
        return rank_obj.rank

    ranks = spawn_ranks(env, 4, body)
    env.run()
    assert [r.done.value for r in ranks] == [0, 1, 2, 3]


def test_communicator_validation():
    env = Environment()
    with pytest.raises(ConfigError):
        Communicator(env, 0)


# -------------------------------------------------------------------- VOL ----
def make_rig(protocol="nvme-opf"):
    """Minimal single-node rig for VOL tests."""
    from repro.cluster.node import InitiatorNode, TargetNode
    from repro.metrics import Collector
    from repro.net import Fabric
    from repro.simcore import RandomStreams

    env = Environment()
    streams = RandomStreams(3)
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, streams, protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    collector = Collector(env)
    initiator = inode.add_initiator(
        "app", tnode, protocol=protocol, queue_depth=64, collector=collector, window_size=8
    )
    ev = initiator.connect()
    env.run(until=ev)
    return env, initiator, tnode, collector


def test_vol_write_and_read_elements():
    from repro.hdf5sim import VolConnector

    env, initiator, tnode, _ = make_rig()
    f = H5File("t.h5", base_lba=0, capacity_blocks=1000)
    ds = f.create_dataset("particles", n_elements=16 * 1024, element_size=8)  # 32 blocks
    vol = VolConnector(env, initiator, f)

    def app(env):
        yield from vol.write_elements(ds, 0, 16 * 1024, queue_depth=16)
        yield from vol.read_elements(ds, 0, 16 * 1024, queue_depth=16)
        return env.now

    p = env.process(app(env))
    env.run()
    assert p.ok
    assert vol.data_requests == 64  # 32 writes + 32 reads
    assert vol.bytes_written == 32 * 4096
    assert vol.bytes_read == 32 * 4096


def test_vol_metadata_is_latency_sensitive():
    from repro.core import Priority
    from repro.hdf5sim import VolConnector

    env, initiator, tnode, _ = make_rig()
    f = H5File("t.h5", base_lba=0, capacity_blocks=1000)
    vol = VolConnector(env, initiator, f)

    req = vol.update_metadata()
    assert req.priority is Priority.LATENCY
    env.run()
    assert req.done
    assert vol.metadata_requests == 1


def test_vol_works_on_baseline_runtime_too():
    from repro.hdf5sim import VolConnector

    env, initiator, tnode, _ = make_rig(protocol="spdk")
    f = H5File("t.h5", base_lba=0, capacity_blocks=1000)
    ds = f.create_dataset("d", n_elements=4096, element_size=8)  # 8 blocks
    vol = VolConnector(env, initiator, f)

    def app(env):
        yield from vol.write_elements(ds, 0, 4096, queue_depth=4)

    p = env.process(app(env))
    env.run()
    assert p.ok
    assert vol.data_requests == 8
