"""Initiator recovery: timeout -> retry -> backoff -> reconnect -> exhaust."""

import pytest

from repro.errors import ConfigError, DeviceError, ProtocolError, RetryExhaustedError
from repro.faults import RetryPolicy
from repro.net.topology import Fabric
from repro.nvmeof.qpair import STATUS_HOST_TIMEOUT
from repro.cluster.node import InitiatorNode, TargetNode
from repro.simcore.engine import Environment
from repro.simcore.rng import RandomStreams
from repro.ssd.queues import STATUS_INTERNAL_ERROR


FAST_POLICY = RetryPolicy(
    timeout_us=200.0,
    max_retries=5,
    backoff_base_us=20.0,
    backoff_cap_us=200.0,
    jitter_frac=0.1,
    reconnect_delay_us=20.0,
    handshake_timeout_us=100.0,
)


def build(policy, seed=2):
    env = Environment()
    streams = RandomStreams(seed)
    fabric = Fabric(env, rate_gbps=10.0, propagation_us=1.0,
                    queue_packets=256, switch_delay_us=0.5)
    tnode = TargetNode(env, "target0", fabric, streams)
    inode = InitiatorNode(env, "client0", fabric)
    initiator = inode.add_initiator(
        "tenant0",
        tnode,
        retry_policy=policy,
        recovery_rng=streams.stream("recovery/tenant0") if policy else None,
    )
    env.run(until=initiator.connect())
    return env, initiator, tnode


# -- policy configuration ----------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_us=100.0, backoff_mult=2.0,
                             backoff_cap_us=350.0, jitter_frac=0.5)
        assert policy.backoff_us(0) == 100.0
        assert policy.backoff_us(1) == 200.0
        assert policy.backoff_us(2) == 350.0  # capped, not 400
        assert policy.backoff_us(0, jitter_u=1.0) == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(timeout_us=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base_us=100.0, backoff_cap_us=50.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_mult=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_frac=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy(handshake_timeout_us=0.0)


# -- timeout + retry ---------------------------------------------------------------
class TestTimeoutRetry:
    def test_healthy_path_never_times_out(self):
        env, ini, _ = build(FAST_POLICY)
        req = ini.read(0)
        env.run()
        assert req.done and req.status == 0
        assert ini.stats.timeouts == 0 and ini.stats.retries == 0
        req.raise_for_status()  # no-op on success

    def test_dead_target_times_out_then_retry_succeeds_after_restart(self):
        env, ini, tnode = build(FAST_POLICY)
        tnode.target.crash()
        req = ini.read(0)
        env.run(until=env.now + 250.0)
        assert ini.stats.timeouts >= 1
        assert not req.done
        tnode.target.restart()
        env.run()
        assert req.done and req.status == 0
        assert ini.stats.retries >= 1
        assert ini.stats.exhausted == 0

    def test_retries_exhausted_reports_host_timeout(self):
        policy = RetryPolicy(timeout_us=100.0, max_retries=2,
                             backoff_base_us=10.0, jitter_frac=0.0)
        env, ini, tnode = build(policy)
        tnode.target.crash()
        completions = []
        ini.on_request_complete = completions.append
        req = ini.read(0)
        env.run()
        # Reported, not lost: the command completed with a synthetic status
        # and the workload-facing completion hook fired.
        assert req.done and req.status == STATUS_HOST_TIMEOUT
        assert completions == [req]
        assert ini.stats.exhausted == 1
        assert ini.stats.retries == 2  # the full budget was spent
        with pytest.raises(RetryExhaustedError):
            req.raise_for_status()

    def test_raise_for_status_distinguishes_device_errors(self):
        env, ini, tnode = build(RetryPolicy(retry_on_error=False, timeout_us=10_000.0))
        tnode.ssds[0].controller.fault_status = STATUS_INTERNAL_ERROR
        req = ini.read(0)
        env.run()
        assert req.done and req.status == STATUS_INTERNAL_ERROR
        with pytest.raises(DeviceError):
            req.raise_for_status()

    def test_transient_device_error_is_retried(self):
        env, ini, tnode = build(FAST_POLICY)
        ctrl = tnode.ssds[0].controller
        ctrl.fault_status = STATUS_INTERNAL_ERROR
        req = ini.read(0)
        env.run(until=env.now + 60.0)  # first completion: internal error
        assert ini.stats.error_retries >= 1
        assert not req.done
        ctrl.fault_status = None  # fault clears before the resend lands
        env.run()
        assert req.done and req.status == 0


# -- disconnect + reconnect --------------------------------------------------------
class TestReconnect:
    def test_disconnect_reconnects_and_resends_outstanding(self):
        env, ini, _ = build(FAST_POLICY)
        req = ini.read(0)
        ini.force_disconnect()
        assert not ini.connected
        env.run()
        assert ini.connected
        assert ini.stats.disconnects == 1
        assert ini.stats.reconnects == 1
        assert ini.stats.resent_on_reconnect >= 1
        assert req.done and req.status == 0

    def test_submit_while_disconnected_is_deferred(self):
        env, ini, _ = build(FAST_POLICY)
        ini.force_disconnect()
        req = ini.read(0)  # allowed: resent once the handshake completes
        assert ini.stats.deferred_sends >= 1
        env.run()
        assert ini.connected
        assert req.done and req.status == 0

    def test_reconnect_backs_off_while_target_is_down(self):
        env, ini, tnode = build(FAST_POLICY)
        tnode.target.crash()
        ini.force_disconnect()
        env.run(until=env.now + 500.0)
        assert not ini.connected  # handshakes are being lost
        tnode.target.restart()
        env.run()
        assert ini.connected
        assert ini.stats.reconnects == 1

    def test_without_policy_disconnect_is_fatal_for_submit(self):
        env, ini, _ = build(None)
        ini.force_disconnect()
        assert ini.stats.disconnects == 1
        with pytest.raises(ProtocolError):
            ini.read(0)

    def test_submit_before_first_connect_raises_even_with_policy(self):
        env = Environment()
        streams = RandomStreams(3)
        fabric = Fabric(env, rate_gbps=10.0, propagation_us=1.0,
                        queue_packets=64, switch_delay_us=0.5)
        tnode = TargetNode(env, "t", fabric, streams)
        inode = InitiatorNode(env, "c", fabric)
        ini = inode.add_initiator("tenant0", tnode, retry_policy=FAST_POLICY)
        with pytest.raises(ProtocolError):
            ini.read(0)
