"""End-to-end protocol tests: baseline vs NVMe-oPF over a real fabric.

These tests run full scenarios (fabric + TCP + target + SSD) and assert the
*behavioural* claims of the paper: coalescing reduces notifications by the
window factor, latency-sensitive requests bypass queues, out-of-order device
completions are handled, tenants are isolated, and the shared-queue design
live-locks where the per-tenant design does not.
"""

import pytest

from repro.cluster import Scenario, ScenarioConfig
from repro.core import Priority, SharedQueueOpfTarget
from repro.workloads import TenantSpec, tenants_for_ratio


def run_pair(ratio="1:1", op_mix="read", gbps=100.0, total_ops=300, window=16, **kw):
    """Run SPDK and oPF on identical workloads; returns (spdk, opf) results."""
    out = []
    for protocol in ("spdk", "nvme-opf"):
        cfg = ScenarioConfig(
            protocol=protocol,
            network_gbps=gbps,
            op_mix=op_mix,
            total_ops=total_ops,
            window_size=window,
            warmup_us=200.0,
            **kw,
        )
        sc = Scenario.two_sided(cfg, tenants_for_ratio(ratio, op_mix=op_mix))
        out.append(sc.run())
    return out


def test_all_requests_complete_exactly_once():
    spdk, opf = run_pair(ratio="1:2", total_ops=200)
    # 2 TC x 200 ops each; commands_received also counts LS + drain markers.
    for res in (spdk, opf):
        assert res.commands_received >= 400


def test_baseline_sends_one_notification_per_request():
    spdk, _ = run_pair(ratio="1:1", total_ops=250)
    # >= total TC ops (250) plus LS ops; every completed request notified.
    assert spdk.completion_notifications >= 250
    assert spdk.coalesced_notifications == 0


def test_opf_reduces_notifications_by_window_factor():
    """Fig. 6c: coalescing cuts completion notifications ~window-fold."""
    spdk, opf = run_pair(ratio="0:1", total_ops=320, window=16)
    assert opf.coalesced_notifications > 0
    # 320 ops / window 16 = 20 coalesced responses (+ slack for drain markers).
    assert opf.completion_notifications <= 320 / 16 + 8
    assert spdk.completion_notifications >= 320
    ratio = spdk.completion_notifications / opf.completion_notifications
    assert ratio > 8  # order-of-window reduction


def test_opf_read_data_still_per_request():
    """Coalescing removes responses, not data: every read returns its 4K."""
    _, opf = run_pair(ratio="0:1", op_mix="read", total_ops=200)
    assert opf.data_pdus_sent >= 200


def test_opf_improves_tc_throughput():
    spdk, opf = run_pair(ratio="1:4", total_ops=400, window=32)
    assert opf.tc_throughput_mbps > spdk.tc_throughput_mbps * 1.15


def test_opf_reduces_ls_tail_latency():
    spdk, opf = run_pair(ratio="1:4", total_ops=400, window=32)
    assert opf.ls_tail_us < spdk.ls_tail_us * 0.9


def test_ls_only_scenario_runs_to_ls_quota():
    cfg = ScenarioConfig(
        protocol="nvme-opf", network_gbps=100, total_ops=100, ls_total_ops=50, warmup_us=0
    )
    sc = Scenario.two_sided(cfg, tenants_for_ratio("1:0"))
    res = sc.run()
    assert res.ls_tail_us is not None
    assert res.tc_throughput_mbps == 0.0


def test_flags_survive_byte_level_encoding():
    """validate_pdus re-encodes/decodes every PDU through real bytes."""
    cfg = ScenarioConfig(
        protocol="nvme-opf",
        network_gbps=100,
        total_ops=120,
        window_size=8,
        warmup_us=0,
        validate_pdus=True,
    )
    sc = Scenario.two_sided(cfg, tenants_for_ratio("1:1"))
    res = sc.run()
    assert res.coalesced_notifications > 0  # coalescing worked through bytes
    assert res.tc_throughput_mbps > 0


def test_byte_validation_matches_object_path():
    """The validate transport must not change protocol behaviour."""
    results = []
    for validate in (False, True):
        cfg = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=100,
            total_ops=150,
            window_size=8,
            warmup_us=0,
            validate_pdus=validate,
            seed=7,
        )
        sc = Scenario.two_sided(cfg, tenants_for_ratio("0:1"))
        results.append(sc.run())
    assert results[0].completion_notifications == results[1].completion_notifications
    assert results[0].commands_received == results[1].commands_received


def test_deterministic_under_seed():
    def once():
        cfg = ScenarioConfig(
            protocol="nvme-opf", network_gbps=100, total_ops=200, seed=42, warmup_us=100
        )
        sc = Scenario.two_sided(cfg, tenants_for_ratio("1:2"))
        return sc.run()

    r1, r2 = once(), once()
    assert r1.tc_throughput_mbps == pytest.approx(r2.tc_throughput_mbps)
    assert r1.ls_tail_us == pytest.approx(r2.ls_tail_us)
    assert r1.completion_notifications == r2.completion_notifications
    assert r1.elapsed_us == pytest.approx(r2.elapsed_us)


def test_different_seeds_differ():
    def once(seed):
        cfg = ScenarioConfig(
            protocol="nvme-opf", network_gbps=100, total_ops=200, seed=seed, warmup_us=100
        )
        sc = Scenario.two_sided(cfg, tenants_for_ratio("1:2"))
        return sc.run()

    assert once(1).elapsed_us != once(2).elapsed_us


def test_tenant_switch_cost_counted_for_baseline():
    spdk, opf = run_pair(ratio="0:3", total_ops=200)
    # Interleaved tenants make the baseline switch constantly; oPF batches.
    assert spdk.tenant_switches > opf.tenant_switches * 2


def test_write_workload_correctness():
    spdk, opf = run_pair(ratio="1:1", op_mix="write", total_ops=200)
    for res in (spdk, opf):
        assert res.tc_throughput_mbps > 0
        assert res.ls_tail_us is not None


def test_mixed_workload_runs():
    spdk, opf = run_pair(ratio="1:2", op_mix="rw50", total_ops=200)
    assert opf.tc_throughput_mbps > 0
    assert spdk.tc_throughput_mbps > 0


def test_multi_ssd_target_node():
    cfg = ScenarioConfig(protocol="nvme-opf", network_gbps=100, total_ops=150, warmup_us=0)
    sc = Scenario(cfg)
    tnode = sc.add_target_node(n_ssds=2)
    inode1 = sc.add_initiator_node()
    inode2 = sc.add_initiator_node()
    sc.add_tenant(TenantSpec("t0", Priority.THROUGHPUT, 128), inode1, tnode, nsid=1)
    sc.add_tenant(TenantSpec("t1", Priority.THROUGHPUT, 128), inode2, tnode, nsid=2)
    res = sc.run()
    assert res.tc_throughput_mbps > 0
    assert all(ssd.controller.commands_completed > 0 for ssd in tnode.ssds)


def test_scenario_runs_once_only():
    cfg = ScenarioConfig(protocol="spdk", total_ops=50, warmup_us=0)
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:1"))
    sc.run()
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        sc.run()


def test_scenario_requires_tenants():
    from repro.errors import ConfigError

    cfg = ScenarioConfig(protocol="spdk", total_ops=50)
    sc = Scenario(cfg)
    sc.add_target_node()
    with pytest.raises(ConfigError):
        sc.run()


# ----------------------------------------------------------- ablations ----
def test_shared_queue_target_premature_drains():
    """§IV-A: a shared TC queue lets one tenant's drain flush another's
    window, destroying the victim's coalescing."""
    import functools

    # Deep shared queue: no live-lock, so the premature-drain effect is
    # observable on a run that completes.
    cfg = ScenarioConfig(
        protocol="nvme-opf",
        network_gbps=100,
        total_ops=300,
        window_size=16,
        warmup_us=0,
        target_cls=functools.partial(SharedQueueOpfTarget, tc_queue_depth=4096),
    )
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:3"))
    res = sc.run()
    target = sc.target_nodes[0].target
    assert isinstance(target, SharedQueueOpfTarget)
    assert target.premature_flushes > 0
    assert target.individual_tc_responses > 0
    # Coalescing quality collapses vs the per-tenant design.
    cfg2 = ScenarioConfig(
        protocol="nvme-opf", network_gbps=100, total_ops=300, window_size=16, warmup_us=0
    )
    sc2 = Scenario.two_sided(cfg2, tenants_for_ratio("0:3"))
    res2 = sc2.run()
    assert res.completion_notifications > res2.completion_notifications


def test_shared_queue_livelock_when_windows_exceed_depth():
    """§IV-A: sum of window sizes > shared queue depth -> live-lock."""
    from repro.cluster.scenario import ScenarioConfig
    import functools

    target_cls = functools.partial(SharedQueueOpfTarget, tc_queue_depth=48)
    # Make partial look like a class for the TargetNode plumbing.
    cfg = ScenarioConfig(
        protocol="nvme-opf",
        network_gbps=100,
        total_ops=300,
        window_size=32,  # 3 tenants x 32 = 96 > 48 shared slots
        warmup_us=0,
        target_cls=target_cls,
    )
    sc = Scenario(cfg)
    tnode = sc.add_target_node()
    for i in range(3):
        inode = sc.add_initiator_node()
        sc.add_tenant(TenantSpec(f"tc{i}", Priority.THROUGHPUT, 128), inode, tnode)

    # The run would never finish: drive the environment manually instead.
    import repro.errors as errors

    # Build everything by invoking run() in a bounded way: we replicate its
    # setup through a deadline, expecting zero TC completions.
    connect_events = []
    from repro.workloads.perf import PerfConfig, PerfGenerator

    for spec, inode, t, nsid in sc._tenant_assignments:
        initiator = inode.add_initiator(
            spec.name, t, protocol="nvme-opf", queue_depth=spec.queue_depth,
            collector=sc.collector, window_size=32, allow_lock=True,
            auto_drain_idle_us=None,  # no idle rescue: expose the hazard
        )
        connect_events.append(initiator.connect())
        gen = PerfGenerator(
            sc.env, initiator, PerfConfig(total_ops=300, queue_depth=128),
            rng=sc.streams.stream(spec.name),
        )
        sc.generators.append(gen)
    sc.env.run(until=sc.env.all_of(connect_events))
    for gen in sc.generators:
        gen.start()
    sc.env.run(until=sc.env.now + 50_000.0)  # 50 ms of simulated time

    target = tnode.target
    assert target.stalled_requests > 0, "expected overflow-stalled requests"
    assert all(gen.completed < gen.config.total_ops for gen in sc.generators), (
        "the shared-queue live-lock should prevent completion"
    )


def test_ls_request_overtakes_queued_tc_window():
    """Timing proof of the bypass: an LS request that arrives while a full
    TC window sits parked at the target completes before that window."""
    from repro.cluster.node import InitiatorNode, TargetNode
    from repro.net import Fabric
    from repro.simcore import Environment, RandomStreams

    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, RandomStreams(51), protocol="nvme-opf")
    inode = InitiatorNode(env, "c0", fabric)
    tc = inode.add_initiator("tc", tnode, protocol="nvme-opf", queue_depth=64,
                             window_size=32, auto_drain_idle_us=None)
    ls = inode.add_initiator("ls", tnode, protocol="nvme-opf", queue_depth=1)
    env.run(until=env.all_of([tc.connect(), ls.connect()]))

    # Park 20 TC requests (window 32: no drain yet, so they only queue).
    tc_reqs = [tc.read(slba=i, priority="throughput") for i in range(20)]
    env.run(until=env.now + 200.0)
    assert not any(r.done for r in tc_reqs)

    ls_req = ls.read(slba=999, priority="latency")
    env.run(until=env.now + 2_000.0)
    assert ls_req.done, "the LS request must bypass the parked window"
    assert not any(r.done for r in tc_reqs), "the parked window must still wait"

    tc.drain()
    env.run()
    assert all(r.done for r in tc_reqs)
    # Ordering on the wall clock: LS completed strictly first.
    assert ls_req.completed_at < min(r.completed_at for r in tc_reqs)
