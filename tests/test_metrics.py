"""Tests for collectors, percentiles, time series, and report tables."""

import numpy as np
import pytest

from repro.core.flags import Priority
from repro.errors import ConfigError
from repro.metrics import (
    BinnedSeries,
    Collector,
    LatencyDistribution,
    P2Quantile,
    exact_percentile,
    format_table,
    improvement_pct,
    reduction_pct,
    speedup,
)
from repro.nvmeof.qpair import IoRequest
from repro.simcore import Environment


def make_request(cid=0, op="read", nbytes=4096, priority=Priority.THROUGHPUT,
                 submitted=0.0, completed=10.0, status=0):
    req = IoRequest(cid=cid, op=op, nsid=1, slba=0, nlb=1, nbytes=nbytes,
                    priority=priority, tenant_id=0)
    req.submitted_at = submitted
    req._mark_complete(completed, status)
    return req


# ------------------------------------------------------------- percentile ----
def test_exact_percentile_basics():
    samples = list(range(1, 101))
    assert exact_percentile(samples, 50) == pytest.approx(50.5)
    assert exact_percentile(samples, 0) == 1
    assert exact_percentile(samples, 100) == 100


def test_exact_percentile_validation():
    with pytest.raises(ConfigError):
        exact_percentile([1.0], 101)
    with pytest.raises(ConfigError):
        exact_percentile([], 50)


def test_latency_distribution_summary():
    dist = LatencyDistribution()
    dist.extend([1.0, 2.0, 3.0, 4.0, 100.0])
    assert dist.mean() == pytest.approx(22.0)
    assert dist.max() == 100.0
    assert dist.p50() == 3.0
    assert dist.tail() >= dist.p99() >= dist.p50()
    assert len(dist) == 5


def test_latency_distribution_empty_errors():
    dist = LatencyDistribution()
    with pytest.raises(ConfigError):
        dist.mean()
    with pytest.raises(ConfigError):
        dist.tail()


def test_p2_quantile_tracks_exact_median():
    rng = np.random.default_rng(3)
    samples = rng.lognormal(mean=3.0, sigma=0.5, size=5000)
    est = P2Quantile(0.5)
    for x in samples:
        est.add(float(x))
    exact = float(np.percentile(samples, 50))
    assert est.value == pytest.approx(exact, rel=0.05)


def test_p2_quantile_high_quantile():
    rng = np.random.default_rng(4)
    samples = rng.exponential(10.0, size=20000)
    est = P2Quantile(0.99)
    for x in samples:
        est.add(float(x))
    exact = float(np.percentile(samples, 99))
    assert est.value == pytest.approx(exact, rel=0.15)


def test_p2_quantile_few_samples():
    est = P2Quantile(0.9)
    with pytest.raises(ConfigError):
        _ = est.value
    for x in [5.0, 1.0, 3.0]:
        est.add(x)
    assert 1.0 <= est.value <= 5.0


def test_p2_validation():
    with pytest.raises(ConfigError):
        P2Quantile(0.0)
    with pytest.raises(ConfigError):
        P2Quantile(1.0)


# -------------------------------------------------------------- collector ----
def test_collector_records_and_aggregates():
    env = Environment()
    collector = Collector(env)
    env.run(until=5.0)
    collector.start_measuring()
    collector.record("a", make_request(completed=10.0, nbytes=4096))
    collector.record("a", make_request(cid=1, completed=12.0, nbytes=4096))
    env.run(until=20.0)
    collector.stop_measuring()
    summary = collector.summary("a")
    assert summary.requests == 2
    assert summary.bytes_moved == 8192
    assert collector.elapsed_us() == pytest.approx(15.0)
    assert collector.aggregate_iops() > 0


def test_collector_warmup_exclusion():
    env = Environment()
    collector = Collector(env)
    collector.record("a", make_request(completed=0.0))  # before warmup cut

    def advance(env):
        yield env.timeout(100.0)

    env.process(advance(env))
    env.run()
    collector.start_measuring()
    collector.record("a", make_request(cid=1, submitted=0.0, completed=50.0))
    # Both records completed before the warmup boundary: excluded lazily.
    assert "a" not in collector.summaries()
    collector.record("a", make_request(cid=2, submitted=100.0, completed=150.0))
    assert collector.summary("a").requests == 1


def test_collector_ensure_window_repairs_empty_window():
    env = Environment()
    collector = Collector(env)
    collector.record("a", make_request(completed=5.0))

    def advance(env):
        yield env.timeout(100.0)

    env.process(advance(env))
    env.run()
    collector.start_measuring()  # after the only record -> empty window
    assert collector.ensure_window(fallback_start=0.0) is True
    assert collector.summary("a").requests == 1
    # With records inside the window, ensure_window is a no-op.
    assert collector.ensure_window(fallback_start=50.0) is False


def test_collector_priority_classes():
    env = Environment()
    collector = Collector(env)
    collector.record("ls", make_request(priority=Priority.LATENCY, completed=5.0))
    collector.record("tc", make_request(cid=1, priority=Priority.THROUGHPUT, completed=5.0))
    env.run(until=10.0)
    ls = collector.by_priority(Priority.LATENCY)
    assert len(ls) == 1 and ls[0].name == "ls"
    assert collector.aggregate_throughput_mbps(Priority.THROUGHPUT) > 0
    pooled = collector.combined_latency(Priority.LATENCY)
    assert len(pooled) == 1


def test_collector_counts_failures():
    env = Environment()
    collector = Collector(env)
    collector.record("a", make_request(status=0x80, completed=1.0))
    assert collector.summary("a").failed == 1


# ------------------------------------------------------------- timeseries ----
def test_binned_series_accumulates():
    series = BinnedSeries(bin_width_us=10.0)
    series.add(1.0, 5.0)
    series.add(9.0, 5.0)
    series.add(15.0, 2.0)
    assert series.nbins == 2
    assert list(series.sums()) == [10.0, 2.0]
    assert list(series.counts()) == [2, 1]
    assert list(series.rates_per_us()) == [1.0, 0.2]


def test_binned_series_validation():
    with pytest.raises(ConfigError):
        BinnedSeries(0)
    series = BinnedSeries(10.0)
    with pytest.raises(ConfigError):
        series.add(-1.0)


def test_binned_series_steady_state_cv():
    series = BinnedSeries(1.0)
    for t in range(10):
        series.add(t + 0.5, 100.0)  # perfectly flat
    assert series.steady_state_cv() == pytest.approx(0.0)


# ----------------------------------------------------------------- report ----
def test_format_table_alignment():
    out = format_table(["name", "value"], [["x", 1.5], ["longer", 22.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "1.50" in out and "22.25" in out
    # All rows align to the same width.
    assert len(set(len(line) for line in lines)) == 1


def test_format_table_title():
    out = format_table(["a"], [[1]], title="T")
    assert out.startswith("T\n=")


def test_improvement_and_reduction():
    assert improvement_pct(150.0, 100.0) == pytest.approx(50.0)
    assert reduction_pct(75.0, 100.0) == pytest.approx(25.0)
    assert speedup(294.0, 100.0) == pytest.approx(2.94)
    assert improvement_pct(1.0, 0.0) == 0.0
    assert speedup(1.0, 0.0) == float("inf")
    assert speedup(0.0, 0.0) == 1.0
