"""Tests for links, switch, and NIC demultiplexing."""

import pytest

from repro.errors import ConfigError, NetworkError
from repro.net import Fabric, Link, Nic, Packet, Switch, WIRE_OVERHEAD
from repro.simcore import Environment


def make_packet(src="a", dst="b", length=1000, kind="data", conn=1):
    return Packet(src=src, dst=dst, conn_id=conn, kind=kind, seq=0, length=length)


# -------------------------------------------------------------------- Link ----
def test_link_delivers_after_tx_plus_propagation():
    env = Environment()
    # 10 Gbps = 1250 bytes/us.  1000+78 byte frame -> 0.8624 us tx + 2 us prop.
    link = Link(env, rate_gbps=10, propagation_us=2.0, queue_packets=8)
    arrivals = []
    link.connect(lambda p: arrivals.append(env.now))
    link.send(make_packet(length=1000))
    env.run()
    assert arrivals == [pytest.approx((1000 + WIRE_OVERHEAD) / 1250.0 + 2.0)]


def test_link_serializes_back_to_back_packets():
    env = Environment()
    link = Link(env, rate_gbps=10, propagation_us=0.0, queue_packets=8)
    arrivals = []
    link.connect(lambda p: arrivals.append(env.now))
    for _ in range(3):
        link.send(make_packet(length=1250 - WIRE_OVERHEAD))  # 1 us per frame
    env.run()
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_link_droptail_when_queue_full():
    env = Environment()
    link = Link(env, rate_gbps=1, propagation_us=0.0, queue_packets=2)
    link.connect(lambda p: None)
    results = [link.send(make_packet()) for _ in range(5)]
    # First packet starts transmitting immediately (dequeued), two queue,
    # and subsequent sends while those two are still waiting get dropped.
    assert results[0] is True
    assert sum(results) == 3
    assert link.stats.dropped == 2
    env.run()
    assert link.stats.delivered == 3


def test_link_counts_data_and_ack_packets_separately():
    env = Environment()
    link = Link(env, rate_gbps=10, propagation_us=0.0, queue_packets=16)
    link.connect(lambda p: None)
    link.send(make_packet(kind="data"))
    link.send(make_packet(kind="ack", length=0))
    env.run()
    assert link.stats.data_packets == 1
    assert link.stats.ack_packets == 1


def test_link_requires_sink():
    env = Environment()
    link = Link(env, rate_gbps=10)
    with pytest.raises(ConfigError):
        link.send(make_packet())


def test_link_validation():
    env = Environment()
    with pytest.raises(ConfigError):
        Link(env, rate_gbps=0)
    with pytest.raises(ConfigError):
        Link(env, rate_gbps=10, propagation_us=-1)
    with pytest.raises(ConfigError):
        Link(env, rate_gbps=10, queue_packets=0)


def test_link_utilization_accounting():
    env = Environment()
    link = Link(env, rate_gbps=10, propagation_us=0.0, queue_packets=8)
    link.connect(lambda p: None)
    link.send(make_packet(length=1250 - WIRE_OVERHEAD))  # exactly 1 us of tx
    env.run(until=2.0)
    assert link.utilization() == pytest.approx(0.5)


# ------------------------------------------------------------------ Switch ----
def test_switch_routes_by_destination():
    env = Environment()
    sw = Switch(env, forwarding_delay_us=0.0)
    got_a, got_b = [], []
    la = Link(env, rate_gbps=10, propagation_us=0.0)
    lb = Link(env, rate_gbps=10, propagation_us=0.0)
    la.connect(lambda p: got_a.append(p))
    lb.connect(lambda p: got_b.append(p))
    sw.attach("a", la)
    sw.attach("b", lb)
    sw.receive(make_packet(src="x", dst="a"))
    sw.receive(make_packet(src="x", dst="b"))
    env.run()
    assert len(got_a) == 1 and len(got_b) == 1
    assert sw.forwarded == 2


def test_switch_unknown_destination_raises():
    env = Environment()
    sw = Switch(env)
    with pytest.raises(NetworkError):
        sw.receive(make_packet(dst="ghost"))


def test_switch_duplicate_attach_rejected():
    env = Environment()
    sw = Switch(env)
    link = Link(env, rate_gbps=10)
    sw.attach("a", link)
    with pytest.raises(NetworkError):
        sw.attach("a", link)


def test_switch_forwarding_delay_applied():
    env = Environment()
    sw = Switch(env, forwarding_delay_us=5.0)
    arrivals = []
    link = Link(env, rate_gbps=100, propagation_us=0.0)
    link.connect(lambda p: arrivals.append(env.now))
    sw.attach("a", link)
    sw.receive(make_packet(dst="a", length=0))
    env.run()
    assert arrivals[0] == pytest.approx(5.0 + WIRE_OVERHEAD / 12500.0)


# --------------------------------------------------------------------- Nic ----
def test_nic_demultiplexes_by_connection():
    env = Environment()
    link = Link(env, rate_gbps=10)
    nic = Nic(env, "host", egress=link)
    got1, got2 = [], []
    nic.register_connection(1, got1.append)
    nic.register_connection(2, got2.append)
    nic.receive(make_packet(conn=1))
    nic.receive(make_packet(conn=2))
    nic.receive(make_packet(conn=2))
    assert len(got1) == 1 and len(got2) == 2
    assert nic.rx_packets == 3


def test_nic_duplicate_connection_rejected():
    env = Environment()
    nic = Nic(env, "host", egress=Link(env, rate_gbps=10))
    nic.register_connection(1, lambda p: None)
    with pytest.raises(NetworkError):
        nic.register_connection(1, lambda p: None)


def test_nic_unknown_connection_dropped_silently():
    env = Environment()
    nic = Nic(env, "host", egress=Link(env, rate_gbps=10))
    nic.receive(make_packet(conn=99))  # must not raise
    assert nic.rx_packets == 1


def test_nic_counts_egress_drops():
    env = Environment()
    link = Link(env, rate_gbps=1, propagation_us=0.0, queue_packets=1)
    link.connect(lambda p: None)
    nic = Nic(env, "host", egress=link)
    for _ in range(5):
        nic.transmit(make_packet())
    assert nic.tx_packets == 5
    assert nic.tx_dropped == 3  # 1 transmitting + 1 queued


# ------------------------------------------------------------------ Fabric ----
def test_fabric_end_to_end_delivery():
    env = Environment()
    fabric = Fabric(env, rate_gbps=10, propagation_us=1.0, switch_delay_us=0.5)
    fabric.add_node("client")
    fabric.add_node("server")
    got = []
    a, b = fabric.connect("client", "server")
    b.deliver = got.append
    a.send_message("hello", size=100)
    env.run()
    assert got == ["hello"]


def test_fabric_duplicate_node_rejected():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node("n1")
    with pytest.raises(NetworkError):
        fabric.add_node("n1")


def test_fabric_connect_requires_attached_nodes():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node("a")
    with pytest.raises(NetworkError):
        fabric.connect("a", "ghost")
    with pytest.raises(NetworkError):
        fabric.connect("a", "a")


def test_fabric_per_node_rate_override():
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    fabric.add_node("slow", rate_gbps=10)
    assert fabric.uplink("slow").rate_gbps == 10
    assert fabric.downlink("slow").rate_gbps == 10


def test_link_drop_tracing():
    from repro.simcore import Tracer

    env = Environment()
    tracer = Tracer(enabled=True)
    link = Link(env, rate_gbps=1, propagation_us=0.0, queue_packets=1, tracer=tracer)
    link.connect(lambda p: None)
    for _ in range(4):
        link.send(make_packet())
    assert tracer.count(kind="drop") == link.stats.dropped > 0
    # Injected drops are traced with their own kind.
    link.drop_filter = lambda p: True
    link.send(make_packet())
    assert tracer.count(kind="drop-injected") == 1


def test_fabric_propagates_tracer():
    from repro.simcore import Tracer

    env = Environment()
    tracer = Tracer(enabled=True)
    fabric = Fabric(env, rate_gbps=10, tracer=tracer)
    fabric.add_node("a")
    assert fabric.uplink("a").tracer is tracer
    assert fabric.downlink("a").tracer is tracer
