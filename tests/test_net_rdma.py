"""Tests for the RDMA-like transport and its fabric/cluster integration."""

import pytest

from repro.errors import ConfigError, NetworkError
from repro.net import Fabric, RdmaConfig, ROCE_OVERHEAD, WIRE_OVERHEAD
from repro.simcore import Environment


def make_pair(env, rate_gbps=100, queue_packets=8192, config=None):
    fabric = Fabric(env, rate_gbps=rate_gbps, queue_packets=queue_packets)
    fabric.add_node("a")
    fabric.add_node("b")
    return fabric, *fabric.connect_rdma("a", "b", config=config)


def test_rdma_message_roundtrip():
    env = Environment()
    _, a, b = make_pair(env)
    got = []
    b.deliver = got.append
    a.send_message({"op": "read"}, size=72)
    env.run()
    assert got == [{"op": "read"}]
    assert a.stats.messages_sent == 1
    assert b.stats.messages_delivered == 1


def test_rdma_in_order_delivery():
    env = Environment()
    _, a, b = make_pair(env)
    got = []
    b.deliver = got.append
    for i in range(100):
        a.send_message(i, size=500)
    env.run()
    assert got == list(range(100))


def test_rdma_large_message_segmentation():
    env = Environment()
    cfg = RdmaConfig(mtu=4096)
    _, a, b = make_pair(env, config=cfg)
    got = []
    b.deliver = got.append
    a.send_message("big", size=1_000_000)
    env.run()
    assert got == ["big"]
    assert a.stats.frames_sent == (1_000_000 + 4095) // 4096


def test_rdma_full_duplex():
    env = Environment()
    _, a, b = make_pair(env)
    got_a, got_b = [], []
    a.deliver = got_a.append
    b.deliver = got_b.append
    a.send_message("to-b", size=64)
    b.send_message("to-a", size=64)
    env.run()
    assert got_a == ["to-a"] and got_b == ["to-b"]


def test_rdma_no_ack_traffic():
    """RDMA needs no ACK packets — half the reverse-path frames of TCP."""
    env = Environment()
    fabric, a, b = make_pair(env)
    b.deliver = lambda p: None
    for i in range(50):
        a.send_message(i, size=4096)
    env.run()
    # The b->switch uplink carried nothing at all.
    assert fabric.uplink("b").stats.enqueued == 0
    assert a.stats.retransmits == 0


def test_rdma_overhead_below_tcp():
    assert ROCE_OVERHEAD < WIRE_OVERHEAD


def test_rdma_drop_is_loud():
    """Violating the lossless assumption must fail fast, not corrupt."""
    env = Environment()
    fabric, a, b = make_pair(env, queue_packets=2)
    b.deliver = lambda p: None
    with pytest.raises(NetworkError, match="lossless"):
        for i in range(100):
            a.send_message(i, size=4096)


def test_rdma_config_validation():
    with pytest.raises(ConfigError):
        RdmaConfig(mtu=100)


def test_rdma_message_size_validation():
    env = Environment()
    _, a, _ = make_pair(env)
    with pytest.raises(NetworkError):
        a.send_message("x", size=0)


def test_fabric_rdma_requires_attached_nodes():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node("a")
    with pytest.raises(NetworkError):
        fabric.connect_rdma("a", "ghost")
    with pytest.raises(NetworkError):
        fabric.connect_rdma("a", "a")


# --------------------------------------------------------------- scenarios ----
def test_scenario_over_rdma_both_protocols():
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    results = {}
    for protocol in ("spdk", "nvme-opf"):
        cfg = ScenarioConfig(
            protocol=protocol, transport="rdma", network_gbps=100,
            total_ops=300, window_size=16, warmup_us=100, seed=6,
        )
        sc = Scenario.two_sided(cfg, tenants_for_ratio("1:2"))
        results[protocol] = sc.run()
    assert results["nvme-opf"].tc_throughput_mbps > results["spdk"].tc_throughput_mbps
    assert results["nvme-opf"].tcp_retransmits == 0
    assert results["spdk"].completion_notifications > results["nvme-opf"].completion_notifications


def test_rdma_shrinks_coalescing_gain():
    """Extended result: coalescing pays most on expensive transports, so
    the oPF/SPDK gap narrows when RDMA removes per-message CPU."""
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    gains = {}
    for transport in ("tcp", "rdma"):
        row = {}
        for protocol in ("spdk", "nvme-opf"):
            cfg = ScenarioConfig(
                protocol=protocol, transport=transport, network_gbps=100,
                total_ops=500, window_size=32, warmup_us=200, seed=4,
            )
            sc = Scenario.two_sided(cfg, tenants_for_ratio("1:4"))
            row[protocol] = sc.run().tc_throughput_mbps
        gains[transport] = row["nvme-opf"] / row["spdk"]
    assert gains["rdma"] < gains["tcp"]
    assert gains["rdma"] > 1.0  # coalescing still wins, just by less


def test_transport_validation_in_config():
    from repro.cluster import ScenarioConfig
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        ScenarioConfig(transport="fc")


def test_effective_costs_scaled_for_rdma():
    from repro.cluster import ScenarioConfig

    tcp_cfg = ScenarioConfig(transport="tcp")
    rdma_cfg = ScenarioConfig(transport="rdma")
    assert rdma_cfg.effective_costs().pdu_rx < tcp_cfg.effective_costs().pdu_rx
    assert rdma_cfg.effective_costs().cqe_build == tcp_cfg.effective_costs().cqe_build
