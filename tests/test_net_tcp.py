"""Tests for the TCP-lite transport: ordering, framing, loss recovery, AIMD."""

import pytest

from repro.errors import ConfigError, NetworkError
from repro.net import Fabric, TcpConfig
from repro.simcore import Environment


def make_pair(env, rate_gbps=100, queue_packets=256, config=None, prop=1.0):
    fabric = Fabric(env, rate_gbps=rate_gbps, propagation_us=prop, queue_packets=queue_packets)
    fabric.add_node("client")
    fabric.add_node("server")
    a, b = fabric.connect("client", "server", config=config)
    return fabric, a, b


def test_single_message_roundtrip():
    env = Environment()
    _, a, b = make_pair(env)
    got = []
    b.deliver = got.append
    a.send_message({"op": "read"}, size=72)
    env.run()
    assert got == [{"op": "read"}]
    assert a.stats.messages_sent == 1
    assert b.stats.messages_delivered == 1


def test_messages_delivered_in_order():
    env = Environment()
    _, a, b = make_pair(env)
    got = []
    b.deliver = got.append
    for i in range(50):
        a.send_message(i, size=500)
    env.run()
    assert got == list(range(50))


def test_large_message_segmented_and_reassembled():
    env = Environment()
    cfg = TcpConfig(mss=1460)
    _, a, b = make_pair(env, config=cfg)
    got = []
    b.deliver = got.append
    a.send_message("big", size=1_000_000)  # ~685 segments
    env.run()
    assert got == ["big"]
    assert a.stats.segments_sent >= 685


def test_full_duplex_traffic():
    env = Environment()
    _, a, b = make_pair(env)
    got_a, got_b = [], []
    a.deliver = got_a.append
    b.deliver = got_b.append
    a.send_message("to-b", size=100)
    b.send_message("to-a", size=100)
    env.run()
    assert got_a == ["to-a"]
    assert got_b == ["to-b"]


def test_multiple_messages_in_one_segment():
    env = Environment()
    _, a, b = make_pair(env)
    got = []
    b.deliver = got.append
    # Many tiny messages fit one MSS; all must be delivered individually.
    for i in range(20):
        a.send_message(i, size=16)
    env.run()
    assert got == list(range(20))


def test_throughput_approaches_line_rate():
    env = Environment()
    # 10 Gbps line: 1250 bytes/us.  Send 2 MB and check elapsed is close
    # to the serialisation floor (goodput >= 75% of line rate).
    _, a, b = make_pair(env, rate_gbps=10)
    done = []
    b.deliver = lambda p: done.append(env.now)
    total = 2 * 1024 * 1024
    a.send_message("blob", size=total)
    env.run()
    elapsed = done[0]
    goodput = total / elapsed  # bytes/us
    assert goodput >= 0.75 * 1250.0


def test_recovery_from_heavy_congestion_losses():
    env = Environment()
    # Tiny queues + 2 competing senders -> guaranteed drops; everything
    # must still be delivered exactly once, in order.
    fabric = Fabric(env, rate_gbps=1, propagation_us=1.0, queue_packets=4)
    fabric.add_node("c1")
    fabric.add_node("c2")
    fabric.add_node("server")
    a1, b1 = fabric.connect("c1", "server")
    a2, b2 = fabric.connect("c2", "server")
    got1, got2 = [], []
    b1.deliver = got1.append
    b2.deliver = got2.append
    for i in range(40):
        a1.send_message(("c1", i), size=4096)
        a2.send_message(("c2", i), size=4096)
    env.run()
    assert got1 == [("c1", i) for i in range(40)]
    assert got2 == [("c2", i) for i in range(40)]
    assert fabric.total_drops() > 0  # the scenario actually exercised loss
    assert a1.stats.retransmits + a2.stats.retransmits > 0


def test_fast_retransmit_triggered_on_isolated_loss():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=64)
    fabric, a, b = make_pair(env, rate_gbps=100, queue_packets=256, config=cfg)
    got = []
    b.deliver = got.append
    # Deterministically drop exactly one mid-stream data segment: the
    # following segments arrive out of order, generating dup ACKs, and the
    # sender must recover with a fast retransmit, not an RTO.
    dropped = []

    def drop_one(packet):
        if packet.is_data and packet.seq == 10 * 1460 and not dropped:
            dropped.append(packet)
            return True
        return False

    fabric.uplink("client").drop_filter = drop_one
    for i in range(60):
        a.send_message(i, size=1460)
    env.run()
    assert got == list(range(60))
    assert len(dropped) == 1
    assert a.stats.fast_retransmits >= 1
    assert a.stats.timeouts == 0


def test_rto_recovers_tail_loss():
    env = Environment()
    # Queue of 1 packet and a burst: the final segments are dropped with no
    # following traffic to generate dup ACKs, so only the RTO can recover.
    cfg = TcpConfig(mss=1460, init_cwnd_segments=32, min_rto_us=500.0)
    fabric, a, b = make_pair(env, rate_gbps=100, queue_packets=1, config=cfg)
    got = []
    b.deliver = got.append
    for i in range(12):
        a.send_message(i, size=1460)
    env.run()
    assert got == list(range(12))
    assert a.stats.timeouts >= 1


def test_cwnd_grows_during_slow_start():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=2)
    _, a, b = make_pair(env, config=cfg)
    b.deliver = lambda p: None
    initial = a.cwnd
    a.send_message("x", size=100_000)
    env.run()
    assert a.cwnd > initial


def test_ack_only_flow_is_quiet_when_idle():
    env = Environment()
    _, a, b = make_pair(env)
    b.deliver = lambda p: None
    a.send_message("x", size=100)
    env.run()
    # After the run everything is acked and no traffic remains.
    assert a.bytes_in_flight == 0
    assert a.send_backlog == 0


def test_message_size_must_be_positive():
    env = Environment()
    _, a, _ = make_pair(env)
    with pytest.raises(NetworkError):
        a.send_message("x", size=0)


def test_config_validation():
    with pytest.raises(ConfigError):
        TcpConfig(mss=100)
    with pytest.raises(ConfigError):
        TcpConfig(init_cwnd_segments=0)
    with pytest.raises(ConfigError):
        TcpConfig(min_rto_us=0)
    with pytest.raises(ConfigError):
        TcpConfig(min_rto_us=100, max_rto_us=50)
    with pytest.raises(ConfigError):
        TcpConfig(ack_every=0)


def test_delayed_ack_eventually_fires():
    env = Environment()
    cfg = TcpConfig(ack_every=8, delayed_ack_us=30.0)
    _, a, b = make_pair(env, config=cfg)
    b.deliver = lambda p: None
    a.send_message("only", size=100)  # 1 segment < ack_every
    env.run()
    assert b.stats.acks_sent >= 1
    assert a.bytes_in_flight == 0


def test_no_duplicate_delivery_under_loss():
    env = Environment()
    fabric = Fabric(env, rate_gbps=1, propagation_us=2.0, queue_packets=3)
    fabric.add_node("c")
    fabric.add_node("s")
    a, b = fabric.connect("c", "s")
    got = []
    b.deliver = got.append
    for i in range(100):
        a.send_message(i, size=2000)
    env.run()
    assert got == list(range(100))  # exactly once, in order
