"""White-box tests of TCP-lite congestion control internals."""


from repro.net import Fabric, TcpConfig
from repro.simcore import Environment


def make_pair(env, config=None, queue_packets=512, rate_gbps=100):
    fabric = Fabric(env, rate_gbps=rate_gbps, propagation_us=1.0,
                    queue_packets=queue_packets)
    fabric.add_node("a")
    fabric.add_node("b")
    a, b = fabric.connect("a", "b", config=config)
    return fabric, a, b


def test_slow_start_roughly_doubles_cwnd_per_rtt():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=2)
    _, a, b = make_pair(env, config=cfg)
    b.deliver = lambda p: None
    start_cwnd = a.cwnd
    cwnds = []

    def sampler(env):
        for _ in range(6):
            yield env.timeout(5.0)  # ~RTT is a few us here
            cwnds.append(a.cwnd)

    a.send_message("x", size=500_000)
    env.process(sampler(env))
    env.run()
    # cwnd grew multiplicatively from 2 MSS without any loss.
    assert cwnds[-1] > start_cwnd * 4


def test_fast_recovery_halves_cwnd_not_collapse():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=64)
    fabric, a, b = make_pair(env, config=cfg)
    b.deliver = lambda p: None
    dropped = []

    def drop_one(packet):
        if packet.is_data and packet.seq == 20 * 1460 and not dropped:
            dropped.append(packet)
            return True
        return False

    fabric.uplink("a").drop_filter = drop_one
    for i in range(120):
        a.send_message(i, size=1460)
    env.run()
    assert a.stats.fast_retransmits == 1
    assert a.stats.timeouts == 0
    # Reno: after recovery cwnd sits near half the pre-loss flight, far
    # above the 1-MSS floor an RTO would impose.
    assert a.cwnd >= 2 * cfg.mss


def test_rto_collapses_cwnd_to_one_mss_and_backs_off():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=8, min_rto_us=400.0)
    fabric, a, b = make_pair(env, config=cfg, queue_packets=512)
    b.deliver = lambda p: None
    # Drop the LAST segment (tail loss: no dupacks possible) repeatedly.
    state = {"drops": 0}

    def drop_tail(packet):
        if packet.is_data and packet.seq == 7 * 1460 and state["drops"] < 2:
            state["drops"] += 1
            return True
        return False

    fabric.uplink("a").drop_filter = drop_tail
    for i in range(8):
        a.send_message(i, size=1460)
    env.run()
    assert a.stats.timeouts >= 2  # the first retransmission was dropped too
    assert a.bytes_in_flight == 0  # recovered in the end


def test_rtt_estimator_converges():
    env = Environment()
    _, a, b = make_pair(env)
    b.deliver = lambda p: None
    for i in range(40):
        a.send_message(i, size=1000)
    env.run()
    # Path RTT: ~2x (1us prop + 0.5us switch) + serialisation; the smoothed
    # estimate must land in single-digit microseconds, and the RTO floors
    # at min_rto.
    assert a._srtt is not None
    assert 2.0 < a._srtt < 20.0
    assert a.rto == a.config.min_rto_us


def test_karn_no_rtt_sample_from_retransmits():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=4, min_rto_us=300.0)
    fabric, a, b = make_pair(env, config=cfg)
    b.deliver = lambda p: None
    # Drop everything for a while so every delivery is a retransmission.
    state = {"until": 3}

    def drop_first_rounds(packet):
        if packet.is_data and state["until"] > 0:
            state["until"] -= 1
            return True
        return False

    fabric.uplink("a").drop_filter = drop_first_rounds
    a.send_message("x", size=1000)
    env.run()
    # The message arrived despite the drops; the RTO stayed sane (it can
    # only have been computed from non-retransmitted samples).
    assert b.stats.messages_delivered == 1
    assert a.rto <= cfg.max_rto_us


def test_backlog_drains_completely():
    env = Environment()
    cfg = TcpConfig(mss=1460, init_cwnd_segments=2)
    _, a, b = make_pair(env, config=cfg)
    got = []
    b.deliver = got.append
    # Queue far more than the initial window allows in flight.
    for i in range(200):
        a.send_message(i, size=1460)
    assert a.send_backlog > 0  # window-limited at submission time
    env.run()
    assert got == list(range(200))
    assert a.send_backlog == 0
    assert a.bytes_in_flight == 0


def test_window_limits_inflight_bytes():
    env = Environment()
    cfg = TcpConfig(mss=1000, init_cwnd_segments=4)
    # Huge propagation so everything in flight stays in flight during check.
    fabric = Fabric(env, rate_gbps=100, propagation_us=10_000.0)
    fabric.add_node("a")
    fabric.add_node("b")
    a, b = fabric.connect("a", "b", config=cfg)
    b.deliver = lambda p: None
    for i in range(100):
        a.send_message(i, size=1000)
    # Before any ACK returns, at most ~cwnd (+1 segment slack) is in flight.
    assert a.bytes_in_flight <= 5 * 1000
    env.run(until=5_000.0)
    assert a.bytes_in_flight <= a.cwnd + 1000
