"""Tests for SQE/CQE byte-level encoding and PDU framing."""

import pytest

from repro.errors import ProtocolError
from repro.nvmeof.capsule import (
    CQE_SIZE,
    Cqe,
    OPCODE_FLUSH,
    OPCODE_READ,
    OPCODE_WRITE,
    SQE_SIZE,
    Sqe,
)
from repro.nvmeof.pdu import (
    C2HDataPdu,
    CapsuleCmdPdu,
    CapsuleRespPdu,
    H2CDataPdu,
    IcReqPdu,
    IcRespPdu,
    decode_pdu,
)


# ------------------------------------------------------------------- SQE ----
def test_sqe_roundtrip_io_fields():
    sqe = Sqe(opcode=OPCODE_READ, cid=0x1234, nsid=7, slba=0xDEADBEEF, nlb=8)
    data = sqe.encode()
    assert len(data) == SQE_SIZE
    back = Sqe.decode(data)
    assert back == sqe


def test_sqe_reserved_bytes_roundtrip():
    sqe = Sqe(opcode=OPCODE_WRITE, cid=1, rsvd_priority=0b11, rsvd_tenant=201)
    back = Sqe.decode(sqe.encode())
    assert back.rsvd_priority == 0b11
    assert back.rsvd_tenant == 201


def test_sqe_reserved_bytes_at_spec_offsets():
    """The oPF flags must live in bytes 8 and 9 (the reserved area)."""
    sqe = Sqe(opcode=OPCODE_READ, cid=1, rsvd_priority=0xAB, rsvd_tenant=0xCD)
    data = sqe.encode()
    assert data[8] == 0xAB
    assert data[9] == 0xCD


def test_sqe_size_is_unchanged_by_flags():
    """§IV-A: priority flags ride in reserved bits; capsule size constant."""
    plain = Sqe(opcode=OPCODE_READ, cid=1).encode()
    flagged = Sqe(opcode=OPCODE_READ, cid=1, rsvd_priority=3, rsvd_tenant=255).encode()
    assert len(plain) == len(flagged) == SQE_SIZE


def test_sqe_nlb_zero_based_encoding():
    sqe = Sqe(opcode=OPCODE_READ, cid=1, nlb=1)
    data = sqe.encode()
    # CDW12 low 16 bits at offset 48: 0's-based block count.
    assert data[48] == 0
    assert Sqe.decode(data).nlb == 1


def test_sqe_flush_roundtrip():
    sqe = Sqe.for_io("flush", cid=9)
    back = Sqe.decode(sqe.encode())
    assert back.opcode == OPCODE_FLUSH
    assert back.op_name == "flush"


def test_sqe_validation():
    with pytest.raises(ProtocolError):
        Sqe(opcode=0x99, cid=1)
    with pytest.raises(ProtocolError):
        Sqe(opcode=OPCODE_READ, cid=-1)
    with pytest.raises(ProtocolError):
        Sqe(opcode=OPCODE_READ, cid=1, rsvd_priority=300)
    with pytest.raises(ProtocolError):
        Sqe(opcode=OPCODE_READ, cid=1, rsvd_tenant=256)
    with pytest.raises(ProtocolError):
        Sqe(opcode=OPCODE_READ, cid=1, nlb=0)
    with pytest.raises(ProtocolError):
        Sqe.for_io("compare", cid=1)
    with pytest.raises(ProtocolError):
        Sqe.decode(b"\x00" * 10)


# ------------------------------------------------------------------- CQE ----
def test_cqe_roundtrip():
    cqe = Cqe(cid=0xBEEF, status=0x80, sqid=3, sqhd=17, result=42)
    data = cqe.encode()
    assert len(data) == CQE_SIZE
    assert Cqe.decode(data) == cqe


def test_cqe_ok_flag():
    assert Cqe(cid=1, status=0).ok
    assert not Cqe(cid=1, status=2).ok


def test_cqe_validation():
    with pytest.raises(ProtocolError):
        Cqe(cid=70000)
    with pytest.raises(ProtocolError):
        Cqe(cid=1, status=-1)
    with pytest.raises(ProtocolError):
        Cqe.decode(b"\x00" * 3)


# ------------------------------------------------------------------- PDUs ----
def test_capsule_cmd_roundtrip_with_data():
    sqe = Sqe(opcode=OPCODE_WRITE, cid=77, slba=100, nlb=1, rsvd_priority=1, rsvd_tenant=5)
    pdu = CapsuleCmdPdu(sqe=sqe, data_len=4096)
    assert pdu.wire_size == 8 + 64 + 4096
    back = decode_pdu(pdu.encode())
    assert isinstance(back, CapsuleCmdPdu)
    assert back.sqe == sqe
    assert back.data_len == 4096  # recovered from plen


def test_capsule_resp_roundtrip_with_coalesced_flag():
    pdu = CapsuleRespPdu(cqe=Cqe(cid=31, status=0), coalesced=True, coalesced_count=32)
    back = decode_pdu(pdu.encode())
    assert isinstance(back, CapsuleRespPdu)
    assert back.coalesced
    assert back.cqe.cid == 31
    plain = decode_pdu(CapsuleRespPdu(cqe=Cqe(cid=1)).encode())
    assert not plain.coalesced


def test_c2h_data_roundtrip():
    pdu = C2HDataPdu(cid=5, data_len=4096, offset=8192, last=True)
    back = decode_pdu(pdu.encode())
    assert isinstance(back, C2HDataPdu)
    assert (back.cid, back.data_len, back.offset, back.last) == (5, 4096, 8192, True)


def test_h2c_data_roundtrip():
    pdu = H2CDataPdu(cid=6, data_len=1024, last=False)
    back = decode_pdu(pdu.encode())
    assert isinstance(back, H2CDataPdu)
    assert not back.last


def test_icreq_carries_tenant_id():
    pdu = IcReqPdu(tenant_id=42)
    back = decode_pdu(pdu.encode())
    assert isinstance(back, IcReqPdu)
    assert back.tenant_id == 42
    assert pdu.wire_size == 128  # spec-fixed ICReq size


def test_icresp_roundtrip():
    pdu = IcRespPdu(maxh2cdata=65536)
    back = decode_pdu(pdu.encode())
    assert isinstance(back, IcRespPdu)
    assert back.maxh2cdata == 65536


def test_decode_rejects_unknown_type():
    with pytest.raises(ProtocolError):
        decode_pdu(b"\xff" + b"\x00" * 20)
    with pytest.raises(ProtocolError):
        decode_pdu(b"\x04")  # truncated


def test_data_pdus_require_payload():
    with pytest.raises(ProtocolError):
        C2HDataPdu(cid=1, data_len=0)
    with pytest.raises(ProtocolError):
        CapsuleCmdPdu(sqe=Sqe(opcode=OPCODE_READ, cid=1), data_len=-1)


def test_completion_notification_is_small():
    """Responses are tiny relative to 4K data — the coalescing rationale."""
    resp = CapsuleRespPdu(cqe=Cqe(cid=1))
    data = C2HDataPdu(cid=1, data_len=4096)
    assert resp.wire_size < data.wire_size / 100
