"""Focused tests for the baseline initiator/target runtimes and qpairs."""

import pytest

from repro.cluster.node import InitiatorNode, TargetNode
from repro.core.flags import Priority
from repro.errors import ConfigError, ProtocolError, QueueFullError
from repro.metrics import Collector
from repro.net import Fabric
from repro.nvmeof.qpair import FabricQpair
from repro.simcore import Environment, RandomStreams


def make_rig(protocol="spdk", queue_depth=8, rate_gbps=100.0):
    env = Environment()
    streams = RandomStreams(5)
    fabric = Fabric(env, rate_gbps=rate_gbps)
    tnode = TargetNode(env, "t0", fabric, streams, protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    collector = Collector(env)
    initiator = inode.add_initiator(
        "app", tnode, protocol=protocol, queue_depth=queue_depth, collector=collector
    )
    return env, initiator, tnode, collector


# ------------------------------------------------------------- fabric qpair ----
def test_qpair_depth_enforced():
    qp = FabricQpair(queue_depth=2)
    qp.allocate("read", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    qp.allocate("read", 1, 1, 1, 4096, Priority.THROUGHPUT, 0)
    assert not qp.has_capacity
    with pytest.raises(QueueFullError):
        qp.allocate("read", 1, 2, 1, 4096, Priority.THROUGHPUT, 0)


def test_qpair_cids_unique_among_outstanding():
    qp = FabricQpair(queue_depth=64)
    requests = [
        qp.allocate("read", 1, i, 1, 4096, Priority.THROUGHPUT, 0) for i in range(64)
    ]
    cids = [r.cid for r in requests]
    assert len(set(cids)) == 64


def test_qpair_cid_reuse_after_completion():
    qp = FabricQpair(queue_depth=1)
    r1 = qp.allocate("read", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    qp.complete(r1.cid, now=1.0)
    r2 = qp.allocate("read", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    assert r2.cid != r1.cid  # monotonically advancing, no immediate reuse
    assert qp.total_submitted == 2
    assert qp.total_completed == 1


def test_qpair_unknown_completion_rejected():
    qp = FabricQpair(queue_depth=4)
    with pytest.raises(ProtocolError):
        qp.complete(99, now=0.0)


def test_qpair_invalid_op():
    qp = FabricQpair(queue_depth=4)
    with pytest.raises(ProtocolError):
        qp.allocate("erase", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    with pytest.raises(ProtocolError):
        FabricQpair(queue_depth=0)


def test_request_latency_requires_completion():
    qp = FabricQpair(queue_depth=4)
    req = qp.allocate("read", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    req.submitted_at = 5.0
    with pytest.raises(ProtocolError):
        _ = req.latency
    qp.complete(req.cid, now=12.5)
    assert req.latency == 7.5


def test_request_completion_event_fires():
    env = Environment()
    qp = FabricQpair(queue_depth=4)
    req = qp.allocate("read", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    ev = req.completion_event(env)
    assert not ev.triggered
    qp.complete(req.cid, now=3.0)
    assert ev.triggered
    # Requesting the event after completion returns an already-fired event.
    req2 = qp.allocate("read", 1, 0, 1, 4096, Priority.THROUGHPUT, 0)
    qp.complete(req2.cid, now=4.0)
    assert req2.completion_event(env).triggered


# ---------------------------------------------------------------- initiator ----
def test_submit_before_connect_rejected():
    env, initiator, _, _ = make_rig()
    with pytest.raises(ProtocolError):
        initiator.read(slba=0)


def test_connect_handshake_and_io():
    env, initiator, tnode, collector = make_rig()
    ev = initiator.connect()
    env.run(until=ev)
    assert initiator.connected
    req = initiator.read(slba=0, priority="latency")
    env.run()
    assert req.done and req.status == 0
    assert req.latency > 0
    assert collector.total_recorded == 1


def test_connect_is_idempotent():
    env, initiator, _, _ = make_rig()
    ev1 = initiator.connect()
    ev2 = initiator.connect()
    assert ev1 is ev2
    env.run(until=ev1)


def test_initiator_queue_full_raises():
    env, initiator, _, _ = make_rig(queue_depth=2)
    env.run(until=initiator.connect())
    initiator.read(slba=0)
    initiator.read(slba=1)
    with pytest.raises(QueueFullError):
        initiator.read(slba=2)


def test_baseline_leaves_reserved_bytes_zero():
    """The baseline runtime must not use the oPF reserved bits — that is
    what makes the two wire-compatible."""
    env, initiator, tnode, _ = make_rig(protocol="spdk")
    env.run(until=initiator.connect())
    seen = []
    conn = tnode.target.connections[0]
    original = conn._on_pdu

    def spy(pdu):
        from repro.nvmeof.pdu import CapsuleCmdPdu

        if isinstance(pdu, CapsuleCmdPdu):
            seen.append((pdu.sqe.rsvd_priority, pdu.sqe.rsvd_tenant))
        original(pdu)

    conn.transport.set_handler(spy)
    initiator.read(slba=0, priority="throughput")
    initiator.write(slba=1, priority="latency")
    env.run()
    assert seen == [(0, 0), (0, 0)]


def test_opf_initiator_sets_reserved_bytes():
    env, initiator, tnode, _ = make_rig(protocol="nvme-opf")
    env.run(until=initiator.connect())
    seen = []
    conn = tnode.target.connections[0]
    original = conn._on_pdu

    def spy(pdu):
        from repro.nvmeof.pdu import CapsuleCmdPdu

        if isinstance(pdu, CapsuleCmdPdu):
            seen.append(pdu.sqe.rsvd_priority)
        original(pdu)

    conn.transport.set_handler(spy)
    initiator.read(slba=0, priority="throughput")
    initiator.read(slba=1, priority="latency")
    env.run()
    assert seen[0] & 0b01  # TC flag
    assert seen[1] == 0  # LS


def test_write_carries_in_capsule_data():
    env, initiator, tnode, _ = make_rig()
    env.run(until=initiator.connect())
    sizes = []
    conn = tnode.target.connections[0]
    original = conn._on_pdu

    def spy(pdu):
        from repro.nvmeof.pdu import CapsuleCmdPdu

        if isinstance(pdu, CapsuleCmdPdu):
            sizes.append(pdu.data_len)
        original(pdu)

    conn.transport.set_handler(spy)
    initiator.write(slba=0, nlb=2)
    initiator.read(slba=0, nlb=2)
    env.run()
    assert sizes == [8192, 0]


def test_read_returns_data_pdu_then_response():
    env, initiator, _, _ = make_rig()
    env.run(until=initiator.connect())
    initiator.read(slba=0)
    env.run()
    assert initiator.stats.data_pdus_received == 1
    assert initiator.stats.completion_pdus_received == 1


def test_initiator_failed_status_counted():
    env, initiator, tnode, _ = make_rig()
    env.run(until=initiator.connect())
    from repro.ssd import DeviceErrorInjector

    DeviceErrorInjector(tnode.ssds[0].controller, fail_every=1)
    req = initiator.read(slba=0)
    env.run()
    assert req.status != 0
    assert initiator.stats.failed == 1


# ------------------------------------------------------------------- target ----
def test_target_routes_multiple_connections():
    env = Environment()
    streams = RandomStreams(5)
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, streams, protocol="spdk")
    inode = InitiatorNode(env, "c0", fabric)
    inits = [
        inode.add_initiator(f"app{i}", tnode, protocol="spdk", queue_depth=8)
        for i in range(3)
    ]
    env.run(until=env.all_of([i.connect() for i in inits]))
    for i, init in enumerate(inits):
        init.read(slba=i)
    env.run()
    assert tnode.target.stats.commands_received == 3
    assert tnode.target.stats.completion_notifications == 3
    assert all(i.stats.completed == 1 for i in inits)


def test_target_node_validation():
    env = Environment()
    fabric = Fabric(env)
    with pytest.raises(ConfigError):
        TargetNode(env, "t", fabric, RandomStreams(0), protocol="iscsi")
    fabric2 = Fabric(env, name="f2")
    with pytest.raises(ConfigError):
        TargetNode(env, "t2", fabric2, RandomStreams(0), n_ssds=0)


def test_initiator_node_protocol_validation():
    env = Environment()
    fabric = Fabric(env)
    tnode = TargetNode(env, "t0", fabric, RandomStreams(0))
    inode = InitiatorNode(env, "c0", fabric)
    with pytest.raises(ConfigError):
        inode.add_initiator("x", tnode, protocol="smb")


def test_tenant_ids_unique_across_nodes():
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    streams = RandomStreams(1)
    tnode = TargetNode(env, "t0", fabric, streams)
    ids = []
    for n in range(2):
        inode = InitiatorNode(env, f"c{n}", fabric)
        for i in range(2):
            init = inode.add_initiator(f"a{n}{i}", tnode, queue_depth=4)
            ids.append(init.tenant_id)
    assert len(set(ids)) == 4
