"""Chaos-safe drain protocol: property & unit tests for both Priority Managers.

The paper's Algorithms 1-4 assume every window member and every coalesced
response arrives exactly once.  These tests drive randomized interleavings
of send / retry / duplicated-response / dropped-response against the
initiator and target Priority Managers (no transport, no CPU model) and
assert the hardened protocol's core invariants:

* every throughput-critical CID is retired **exactly once**;
* the un-drained window never exceeds ``window_size`` pending members;
* stale/replayed coalesced responses are counted and ignored — never
  double-retired, never an error;
* a truly unknown drain CID is still a protocol violation;
* resync reconciliation drops exactly the orphans at or below the
  announced high-water mark, exactly once per new epoch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cid_queue import CidQueue, RETIRED_MEMORY, cid_le
from repro.core.flags import Priority, unpack_flags
from repro.core.priority_manager import InitiatorPriorityManager, TargetPriorityManager
from repro.core.window import DrainWatchdog
from repro.errors import ConfigError, ProtocolError
from repro.metrics.report import FairnessIndex, jain_fairness
from repro.nvmeof.capsule import Sqe
from repro.nvmeof.pdu import CapsuleCmdPdu, IcReqPdu
from repro.simcore.engine import Environment
from repro.ssd.latency import OP_FLUSH, OP_READ


# -- serial-number CID ordering -----------------------------------------------------
class TestCidLe:
    def test_plain_ordering(self):
        assert cid_le(1, 2) and cid_le(5, 5) and not cid_le(3, 2)

    def test_survives_the_16bit_wrap(self):
        assert cid_le(0xFFFE, 0x0001)  # 3 steps forward across the wrap
        assert not cid_le(0x0001, 0xFFFE)

    def test_half_space_boundary(self):
        assert cid_le(0, 0x7FFF)
        assert not cid_le(0, 0x8000)


# -- duplicate-tolerant drain_through (satellite: stale vs unknown) ----------------
class TestCidQueueDuplicates:
    def test_stale_duplicate_is_counted_and_ignored(self):
        q = CidQueue()
        for cid in (1, 2, 3):
            q.push(cid)
        assert q.drain_through(3) == [1, 2, 3]
        assert q.drain_through(3) == []  # replayed response: empty walk
        assert q.drain_through(2) == []  # older replay: also stale
        assert q.duplicate_drains == 2
        assert q.last_retired == 3

    def test_unknown_cid_still_raises(self):
        q = CidQueue()
        q.push(1)
        with pytest.raises(ProtocolError, match="unknown CID 99"):
            q.drain_through(99)
        assert q.duplicate_drains == 0

    def test_reused_cid_starts_a_fresh_life(self):
        q = CidQueue()
        q.push(7)
        q.drain_through(7)
        assert q.was_retired(7)
        q.push(7)  # 16-bit wrap reuse: must not be treated as duplicate
        assert not q.was_retired(7)
        assert q.drain_through(7) == [7]

    def test_retired_memory_is_bounded(self):
        q = CidQueue(retired_memory=4)
        for cid in range(6):
            q.push(cid)
            q.drain_through(cid)
        # Only the 4 newest retirements are remembered.
        assert not q.was_retired(0) and not q.was_retired(1)
        assert all(q.was_retired(c) for c in (2, 3, 4, 5))
        with pytest.raises(ProtocolError):
            q.drain_through(0)  # forgotten: indistinguishable from unknown

    def test_default_memory_covers_many_queue_depths(self):
        assert RETIRED_MEMORY >= 4096

    def test_evict_remembers_and_counts(self):
        q = CidQueue()
        for cid in (1, 2, 3):
            q.push(cid)
        q.evict(2)
        assert q.total_evicted == 1 and 2 not in q
        assert q.drain_through(2) == []  # late response for the evicted CID
        assert q.duplicate_drains == 1
        assert q.drain_through(3) == [1, 3]
        with pytest.raises(ProtocolError):
            q.evict(99)

    def test_epoch_advance_keeps_members(self):
        q = CidQueue()
        q.push(1)
        assert q.advance_epoch() == 1
        assert q.advance_epoch() == 2
        assert list(q.as_list()) == [1]


# -- drain watchdog -----------------------------------------------------------------
class TestDrainWatchdog:
    def test_expiry_fires_on_lost(self):
        env = Environment()
        lost = []
        wd = DrainWatchdog(env, 10.0, lost.append)
        wd.arm(5)
        env.run(until=11.0)
        assert lost == [5] and wd.expired == 1 and wd.outstanding == 0

    def test_disarm_makes_the_deadline_a_noop(self):
        env = Environment()
        lost = []
        wd = DrainWatchdog(env, 10.0, lost.append)
        wd.arm(5)
        wd.disarm(5)
        env.run(until=20.0)
        assert lost == [] and wd.expired == 0

    def test_rearm_supersedes_the_old_deadline(self):
        env = Environment()
        lost = []
        wd = DrainWatchdog(env, 10.0, lost.append)
        wd.arm(5)
        env.run(until=6.0)
        wd.arm(5)  # restart the clock at t=6
        env.run(until=11.0)
        assert lost == []  # the t=10 deadline was superseded
        env.run(until=17.0)
        assert lost == [5]

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigError):
            DrainWatchdog(Environment(), 0.0, lambda cid: None)


# -- initiator PM: retry-aware stamping ---------------------------------------------
def _sqe(cid, op=OP_READ):
    return Sqe.for_io(op, cid=cid)


class TestRestamp:
    def test_restamp_preserves_flags_without_reregistering(self):
        pm = InitiatorPriorityManager(window_size=4, queue_depth=16)
        sqe = _sqe(1)
        draining = pm.before_send(sqe, Priority.THROUGHPUT, tenant_id=3)
        before = (len(pm.cid_queue), pm.pending_undrained)
        resend = _sqe(1)
        assert pm.restamp(resend, Priority.THROUGHPUT, draining, tenant_id=3) == draining
        assert (len(pm.cid_queue), pm.pending_undrained) == before
        assert resend.rsvd_priority == sqe.rsvd_priority
        assert resend.rsvd_tenant == 3

    def test_restamp_of_unregistered_tc_cid_raises(self):
        pm = InitiatorPriorityManager(window_size=4, queue_depth=16)
        with pytest.raises(ProtocolError, match="not window-registered"):
            pm.restamp(_sqe(9), Priority.THROUGHPUT, False, tenant_id=0)

    def test_restamped_drain_rejoins_outstanding(self):
        pm = InitiatorPriorityManager(window_size=2, queue_depth=16)
        pm.before_send(_sqe(1), Priority.THROUGHPUT, 0)
        assert pm.before_send(_sqe(2), Priority.THROUGHPUT, 0)  # drain
        assert pm.outstanding_drains == {2}
        pm.on_coalesced_response(2)
        assert pm.outstanding_drains == set()
        pm.before_send(_sqe(3), Priority.THROUGHPUT, 0)
        pm.before_send(_sqe(4), Priority.THROUGHPUT, 0)
        pm.restamp(_sqe(4), Priority.THROUGHPUT, True, 0)
        assert 4 in pm.outstanding_drains

    def test_forced_drain_counted_separately(self):
        pm = InitiatorPriorityManager(window_size=8, queue_depth=16)
        pm.before_send(_sqe(1), Priority.THROUGHPUT, 0)
        marker = _sqe(2, op=OP_FLUSH)
        pm.force_drain_flags(marker, tenant_id=0, forced=True)
        assert pm.forced_drains == 1 and pm.drains_sent == 1
        priority, draining = unpack_flags(marker.rsvd_priority)
        assert priority is Priority.THROUGHPUT and draining
        assert pm.on_coalesced_response(2) == [1, 2]
        # Replay of the same response: ignored, counted.
        assert pm.on_coalesced_response(2) == []
        assert pm.duplicate_drains == 1

    def test_on_reconnect_announces_epoch_and_highwater(self):
        pm = InitiatorPriorityManager(window_size=2, queue_depth=16)
        pm.before_send(_sqe(1), Priority.THROUGHPUT, 0)
        pm.before_send(_sqe(2), Priority.THROUGHPUT, 0)
        pm.on_coalesced_response(2)
        assert pm.on_reconnect() == (1, 2)
        assert pm.on_reconnect() == (2, 2)


# -- target PM: duplicate members + resync ------------------------------------------
class _FakeConn:
    tenant_id = None


def _cmd(cid, tenant=0, draining=False, op=OP_READ):
    sqe = _sqe(cid, op=op)
    # Stamp via the real flag codec to keep the wire format honest.
    from repro.core.flags import pack_flags

    sqe.rsvd_priority = pack_flags(Priority.THROUGHPUT, draining)
    sqe.rsvd_tenant = tenant
    return CapsuleCmdPdu(sqe=sqe)


class TestTargetDuplicates:
    def test_duplicate_queued_member_is_dropped(self):
        pm = TargetPriorityManager()
        conn = _FakeConn()
        pm.on_command(conn, _cmd(1))
        _p, group, batch = pm.on_command(conn, _cmd(1))  # retry of a queued member
        assert group is None and batch == []
        assert pm.duplicate_commands == 1
        _p, group, batch = pm.on_command(conn, _cmd(2, draining=True))
        assert [p.sqe.cid for _c, p in batch] == [1, 2]

    def test_retry_of_executed_member_requeues(self):
        pm = TargetPriorityManager()
        conn = _FakeConn()
        pm.on_command(conn, _cmd(1))
        pm.on_command(conn, _cmd(2, draining=True))  # flushes {1, 2}
        _p, group, batch = pm.on_command(conn, _cmd(1))  # late resend of 1
        assert group is None and batch == [] and pm.duplicate_commands == 0
        _p, group, batch = pm.on_command(conn, _cmd(3, draining=True))
        assert [p.sqe.cid for _c, p in batch] == [1, 3]


class TestResync:
    def _loaded_pm(self):
        pm = TargetPriorityManager()
        conn = _FakeConn()
        for cid in (10, 11, 12):
            pm.on_command(conn, _cmd(cid, tenant=1))
        return pm

    def test_initial_epoch_zero_reconciles_nothing(self):
        pm = self._loaded_pm()
        assert pm.resync(1, epoch=0, last_retired=None) == []
        assert pm.resyncs == 0

    def test_higher_epoch_drops_orphans_below_highwater(self):
        pm = self._loaded_pm()
        pm.resync(1, epoch=0, last_retired=None)
        orphans = pm.resync(1, epoch=1, last_retired=11)
        assert [p.sqe.cid for _c, p in orphans] == [10, 11]
        assert pm.resyncs == 1
        assert pm.orphans_completed == 2 and pm.orphans_requeued == 1
        tenant = pm.registry.get(1)
        assert tenant.cid_queue.as_list() == [12]

    def test_stale_or_repeated_epoch_is_a_noop(self):
        pm = self._loaded_pm()
        pm.resync(1, epoch=2, last_retired=10)
        queued = pm.registry.get(1).cid_queue.as_list()
        assert pm.resync(1, epoch=2, last_retired=12) == []  # duplicated handshake
        assert pm.resync(1, epoch=1, last_retired=12) == []  # stale
        assert pm.registry.get(1).cid_queue.as_list() == queued
        assert pm.resyncs == 1

    def test_resync_for_unknown_tenant_is_safe(self):
        pm = TargetPriorityManager()
        pm.resync(5, epoch=0, last_retired=None)
        assert pm.resync(5, epoch=3, last_retired=100) == []
        assert pm.resyncs == 1

    def test_highwater_uses_serial_ordering_across_the_wrap(self):
        pm = TargetPriorityManager()
        conn = _FakeConn()
        for cid in (0xFFFE, 0xFFFF, 0x0001):
            pm.on_command(conn, _cmd(cid, tenant=2))
        pm.resync(2, epoch=0, last_retired=None)
        orphans = pm.resync(2, epoch=1, last_retired=0xFFFF)
        assert [p.sqe.cid for _c, p in orphans] == [0xFFFE, 0xFFFF]
        assert pm.registry.get(2).cid_queue.as_list() == [0x0001]


# -- handshake PDU carries the resync state -----------------------------------------
class TestIcReqResyncRoundtrip:
    def test_epoch_and_highwater_survive_the_wire(self):
        pdu = IcReqPdu(tenant_id=3, resync_epoch=7, last_retired=0xBEEF,
                       has_last_retired=True)
        decoded = IcReqPdu.decode(pdu.encode())
        assert decoded.tenant_id == 3
        assert decoded.resync_epoch == 7
        assert decoded.last_retired == 0xBEEF and decoded.has_last_retired
        assert pdu.wire_size == IcReqPdu.HLEN  # size unchanged: reserved bytes

    def test_absent_highwater_is_distinguishable_from_cid_zero(self):
        fresh = IcReqPdu.decode(IcReqPdu(tenant_id=1).encode())
        assert not fresh.has_last_retired and fresh.resync_epoch == 0


# -- fairness index ------------------------------------------------------------------
class TestFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly_approaches_one_over_n(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_fair_by_convention(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_accumulator_matches_function(self):
        fi = FairnessIndex()
        for v in (1.0, 2.0, 3.0):
            fi.add(v)
        assert len(fi) == 3
        assert fi.index == pytest.approx(jain_fairness([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            fi.add(-1.0)


# -- the property: randomized chaos interleavings ------------------------------------
ACTIONS = st.lists(
    st.one_of(
        st.just(("send",)),
        st.tuples(st.just("retry"), st.integers(min_value=0, max_value=10 ** 6)),
        st.just(("deliver",)),
        st.just(("drop",)),
        st.tuples(st.just("dup"), st.integers(min_value=0, max_value=10 ** 6)),
        st.just(("force",)),
    ),
    min_size=1,
    max_size=80,
)


class _Harness:
    """Couples the two PMs through an unreliable 'wire' the test controls."""

    def __init__(self, window_size):
        self.window = window_size
        self.ipm = InitiatorPriorityManager(window_size=window_size, queue_depth=4096)
        self.tpm = TargetPriorityManager()
        self.conn = _FakeConn()
        self.next_cid = 0
        self.sent = []  # every workload CID ever issued
        self.pending_responses = []  # drain CIDs en route to the initiator
        self.answered = []  # drain CIDs already delivered (replayable)
        self.retired = []  # every CID the initiator retired, in order

    def _stamp_and_deliver(self, cid, draining):
        from repro.core.flags import pack_flags

        sqe = _sqe(cid)
        sqe.rsvd_priority = pack_flags(Priority.THROUGHPUT, draining)
        sqe.rsvd_tenant = 0
        _p, group, batch = self.tpm.on_command(self.conn, CapsuleCmdPdu(sqe=sqe))
        if group is not None:
            # Device completes the whole window instantly in this model.
            self.pending_responses.append(group.drain_cid)

    def send(self):
        cid = self.next_cid
        self.next_cid += 1
        sqe = _sqe(cid)
        draining = self.ipm.before_send(sqe, Priority.THROUGHPUT, 0)
        self.sent.append((cid, draining))
        self._stamp_and_deliver(cid, draining)

    def retry(self, pick):
        live = [(c, d) for c, d in self.sent if self.ipm.is_registered(c)]
        if not live:
            return
        cid, draining = live[pick % len(live)]
        self.ipm.restamp(_sqe(cid), Priority.THROUGHPUT, draining, 0)
        self._stamp_and_deliver(cid, draining)

    def deliver(self):
        if not self.pending_responses:
            return
        drain_cid = self.pending_responses.pop(0)
        self.retired.extend(self.ipm.on_coalesced_response(drain_cid))
        self.answered.append(drain_cid)

    def drop(self):
        if self.pending_responses:
            self.pending_responses.pop(0)

    def dup(self, pick):
        pool = self.answered + self.pending_responses
        if not pool:
            return
        self.retired.extend(self.ipm.on_coalesced_response(pool[pick % len(pool)]))

    def force(self):
        """The drain watchdog's recovery move (lost response presumed)."""
        if len(self.ipm.cid_queue) == 0:
            return
        cid = self.next_cid
        self.next_cid += 1
        sqe = _sqe(cid, op=OP_FLUSH)
        self.ipm.force_drain_flags(sqe, tenant_id=0, forced=True)
        self._stamp_and_deliver(cid, True)

    def settle(self):
        """Post-chaos recovery: force-drain until every window retires."""
        for _ in range(2 * self.window + len(self.sent) + 8):
            while self.pending_responses:
                self.deliver()
            if len(self.ipm.cid_queue) == 0:
                return
            self.force()
        raise AssertionError("drain protocol failed to settle")


@given(actions=ACTIONS, window=st.integers(min_value=1, max_value=8))
@settings(max_examples=120, deadline=None)
def test_random_interleavings_retire_every_cid_exactly_once(actions, window):
    h = _Harness(window)
    for action in actions:
        kind = action[0]
        if kind == "send":
            h.send()
        elif kind == "retry":
            h.retry(action[1])
        elif kind == "deliver":
            h.deliver()
        elif kind == "drop":
            h.drop()
        elif kind == "dup":
            h.dup(action[1])
        else:
            h.force()
        # The un-drained window is bounded at every step (Alg. 1 resets the
        # counter when it reaches the window size).
        assert h.ipm.pending_undrained < max(h.window, 1) or h.window == 1
        assert h.ipm.pending_undrained <= h.window

    h.settle()

    # Exactly-once: every workload CID retired once, no CID retired twice.
    workload = [cid for cid, _d in h.sent]
    assert len(h.retired) == len(set(h.retired))
    assert set(workload).issubset(set(h.retired))
    # Whatever else was retired can only be drain markers the harness sent.
    assert set(h.retired) <= set(range(h.next_cid))
    # Target bookkeeping never exploded: members are queued at most once.
    tenant_queue = (
        h.tpm.registry.get(0).cid_queue.as_list() if 0 in h.tpm.registry else []
    )
    assert len(tenant_queue) == len(set(tenant_queue))
