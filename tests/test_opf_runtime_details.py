"""Detailed tests of the oPF initiator/target runtimes: drains, windows,
dynamic tuning, and cross-feature composition."""

import pytest

from repro.cluster import Scenario, ScenarioConfig
from repro.cluster.node import InitiatorNode, TargetNode
from repro.core import DevicePriorityOpfTarget
from repro.net import Fabric
from repro.simcore import Environment, RandomStreams
from repro.workloads import tenants_for_ratio


def make_rig(protocol="nvme-opf", queue_depth=64, **init_kwargs):
    env = Environment()
    streams = RandomStreams(12)
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, streams, protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    initiator = inode.add_initiator(
        "app", tnode, protocol=protocol, queue_depth=queue_depth, **init_kwargs
    )
    env.run(until=initiator.connect())
    return env, initiator, tnode


# --------------------------------------------------------------- drains ----
def test_explicit_drain_flushes_partial_window():
    env, initiator, tnode = make_rig(window_size=16, auto_drain_idle_us=None)
    requests = [initiator.read(slba=i, priority="throughput") for i in range(5)]
    env.run(until=env.now + 2_000)
    # Without a drain the partial window sits parked at the target.
    assert not any(r.done for r in requests)
    assert tnode.target.pm.registry.total_queued() == 5
    marker = initiator.drain()
    assert marker is not None
    env.run()
    assert all(r.done for r in requests)
    assert marker.done


def test_drain_with_nothing_pending_is_noop():
    env, initiator, _ = make_rig(window_size=16)
    assert initiator.drain() is None


def test_idle_timer_auto_drains():
    env, initiator, _ = make_rig(window_size=16, auto_drain_idle_us=40.0)
    requests = [initiator.read(slba=i, priority="throughput") for i in range(3)]
    env.run()  # idle timer fires at +40us, drains, everything completes
    assert all(r.done for r in requests)


def test_window_auto_uses_optimizer():
    env, initiator, _ = make_rig(window_size="auto", workload_hint="read")
    from repro.core import select_window

    assert initiator.window_size == select_window("read", 100.0, queue_depth=64)


def test_window_clamped_to_half_queue_depth():
    env, initiator, _ = make_rig(window_size=64, queue_depth=16)
    assert initiator.window_size == 8


def test_dynamic_window_adjusts_at_runtime():
    env, initiator, _ = make_rig(window_size=2, dynamic_window=True)
    initial = initiator.window_size
    state = {"submitted": 0}
    total = 400

    def refill(request):
        if request.op == "flush":
            return
        if state["submitted"] < total and initiator.qpair.has_capacity:
            initiator.read(slba=state["submitted"], priority="throughput")
            state["submitted"] += 1

    initiator.on_request_complete = refill
    for _ in range(48):
        initiator.read(slba=state["submitted"], priority="throughput")
        state["submitted"] += 1
    env.run()
    # The controller observed drain round trips and moved the window.
    assert initiator.pm.window_size != initial or initiator._window_controller.adjustments > 0


# -------------------------------------------------------- composition ----
def test_device_priority_with_rdma_transport():
    """Extensions compose: urgent qpairs + RDMA fabric + coalescing."""
    cfg = ScenarioConfig(
        protocol="nvme-opf", transport="rdma", network_gbps=100,
        total_ops=300, window_size=16, warmup_us=100, seed=9,
        target_cls=DevicePriorityOpfTarget,
    )
    sc = Scenario.two_sided(cfg, tenants_for_ratio("1:2"))
    res = sc.run()
    target = sc.target_nodes[0].target
    assert target.urgent_submissions > 0
    assert res.coalesced_notifications > 0
    assert res.tcp_retransmits == 0
    assert res.ls_tail_us < 200  # urgent class keeps LS out of the backlog


def test_validate_pdus_with_opf_and_drain_markers():
    """Byte-validating transport must survive flush drain markers too."""
    env, initiator, tnode = make_rig(window_size=16, validate_pdus=True,
                                     auto_drain_idle_us=None)
    reqs = [initiator.read(slba=i, priority="throughput") for i in range(5)]
    initiator.drain()
    env.run()
    assert all(r.done for r in reqs)


def test_mixed_priorities_single_connection():
    """LS and TC requests interleaved on one qpair behave per class."""
    env, initiator, tnode = make_rig(window_size=8)
    ls = [initiator.read(slba=i, priority="latency") for i in range(3)]
    tc = [initiator.read(slba=100 + i, priority="throughput") for i in range(8)]
    env.run()
    assert all(r.done for r in ls + tc)
    # LS requests were answered individually; the TC window coalesced.
    stats = tnode.target.stats
    assert stats.coalesced_notifications == 1
    assert stats.completion_notifications == 1 + 3


def test_opf_initiator_to_baseline_target_wire_compat():
    """An oPF initiator talking to a priority-blind target must still work:
    the reserved bytes are ignored and every request is answered
    individually (coalescing silently degrades to baseline behaviour)."""
    env = Environment()
    streams = RandomStreams(12)
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, streams, protocol="spdk")  # baseline!
    inode = InitiatorNode(env, "c0", fabric)
    initiator = inode.add_initiator(
        "app", tnode, protocol="nvme-opf", queue_depth=64, window_size=8
    )
    env.run(until=initiator.connect())
    reqs = [initiator.read(slba=i, priority="throughput") for i in range(8)]
    env.run()
    # The baseline target answers per request; the oPF initiator's PM
    # tolerates the individual responses (premature-response path).
    assert all(r.done for r in reqs)
    assert initiator.pm.premature_responses == 8
    assert tnode.target.stats.coalesced_notifications == 0


def test_target_cls_must_be_constructible():
    env = Environment()
    fabric = Fabric(env)
    with pytest.raises(TypeError):
        TargetNode(env, "t", fabric, RandomStreams(0), target_cls=object)
