"""Fault tolerance of the parallel campaign runner.

Two failure families, two contracts:

* **Transient worker trouble** — an executor raising an unexpected
  exception, or the worker process dying mid-unit — is retried (once by
  default) on a fresh process; after a pool breakage, retries run in
  per-unit isolation so a deterministic crasher can only break itself.
* **Deterministic domain failures** — invariant violations, bad configs,
  any :class:`ReproError` — are *never* retried (re-running would fail
  identically); they fail the whole campaign with the offending unit and
  seed named.

These suites register throwaway executor kinds at import time; the fork
start method makes them visible inside worker processes.
"""

import os

import pytest

from repro.errors import CampaignError, ConfigError, InvariantViolation
from repro.parallel import WorkUnit, register_executor, run_units

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def _flaky_executor(payload):
    """Fails the first attempt (recorded via a marker file that survives
    the process boundary), succeeds on the retry."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempt 1\n")
        if payload.get("die"):
            os._exit(3)  # simulate the worker process dying mid-unit
        raise RuntimeError("transient failure on first attempt")
    return f"recovered tag={payload['tag']}", {"tag": payload["tag"]}


def _always_raises(payload):
    raise RuntimeError("this executor never succeeds")


def _always_dies(payload):
    os._exit(3)


def _steady(payload):
    return f"steady tag={payload['tag']}", {"tag": payload["tag"]}


def _breaches_invariant(payload):
    raise InvariantViolation(
        f"cid-retirement breached in {payload['where']} (seed {payload['seed']})"
    )


register_executor("test-flaky", _flaky_executor, replace=True)
register_executor("test-always-raises", _always_raises, replace=True)
register_executor("test-always-dies", _always_dies, replace=True)
register_executor("test-steady", _steady, replace=True)
register_executor("test-breaches-invariant", _breaches_invariant, replace=True)


def _steady_units(n):
    return [
        WorkUnit(f"steady/{i}", "test-steady", {"tag": i}) for i in range(n)
    ]


class TestRetryOnTransientFailure:
    def test_raising_worker_is_retried_once_and_reported(self, tmp_path):
        units = _steady_units(2) + [
            WorkUnit(
                "flaky/raise",
                "test-flaky",
                {"marker": str(tmp_path / "raise.marker"), "tag": 99},
            )
        ]
        campaign = run_units(units, workers=WORKERS)
        assert campaign.ok
        flaky = campaign.result_for("flaky/raise")
        assert flaky.attempts == 2, "first attempt failed, retry succeeded"
        assert campaign.retried == {"flaky/raise": 2}
        assert flaky.data == {"tag": 99}

    def test_dying_worker_is_retried_on_a_fresh_pool(self, tmp_path):
        units = _steady_units(2) + [
            WorkUnit(
                "flaky/die",
                "test-flaky",
                {"marker": str(tmp_path / "die.marker"), "tag": 7, "die": True},
            )
        ]
        campaign = run_units(units, workers=WORKERS)
        assert campaign.ok
        flaky = campaign.result_for("flaky/die")
        assert flaky.attempts >= 2
        assert flaky.data == {"tag": 7}
        # Collateral units caught in the pool breakage were re-run too and
        # still produced their (deterministic) outputs.
        for i in range(2):
            assert campaign.result_for(f"steady/{i}").data == {"tag": i}

    def test_serial_path_retries_raising_units_too(self, tmp_path):
        unit = WorkUnit(
            "flaky/serial",
            "test-flaky",
            {"marker": str(tmp_path / "serial.marker"), "tag": 1},
        )
        campaign = run_units([unit], workers=0)
        assert campaign.ok
        assert campaign.result_for("flaky/serial").attempts == 2


class TestExhaustedRetries:
    def test_persistent_raiser_fails_the_campaign_with_the_unit_named(self):
        units = _steady_units(1) + [WorkUnit("bad/raiser", "test-always-raises", {})]
        campaign = run_units(units, workers=WORKERS)
        assert not campaign.ok
        bad = campaign.result_for("bad/raiser")
        assert bad.error_kind == "RuntimeError"
        assert bad.attempts == 2, "one retry, then condemned"
        assert campaign.result_for("steady/0").ok
        with pytest.raises(CampaignError, match="bad/raiser"):
            campaign.raise_on_failure()

    def test_persistent_crasher_is_condemned_without_collateral_damage(self):
        """A unit that always kills its worker breaks the shared pool once;
        the retry round isolates each unit in its own pool, so only the
        crasher is condemned and every innocent unit completes."""
        units = _steady_units(3) + [WorkUnit("bad/crasher", "test-always-dies", {})]
        campaign = run_units(units, workers=WORKERS)
        assert [r.unit_id for r in campaign.failures] == ["bad/crasher"]
        bad = campaign.result_for("bad/crasher")
        assert bad.error_kind == "BrokenProcessPool"
        assert bad.error  # a message, not an empty string
        for i in range(3):
            assert campaign.result_for(f"steady/{i}").ok
        with pytest.raises(CampaignError, match="bad/crasher"):
            campaign.raise_on_failure()

    def test_zero_retries_condemns_on_first_failure(self):
        campaign = run_units(
            [WorkUnit("bad/raiser", "test-always-raises", {})],
            workers=1,
            max_retries=0,
        )
        assert not campaign.ok
        assert campaign.result_for("bad/raiser").attempts == 1


class TestDeterministicFailures:
    def test_invariant_violation_is_not_retried_and_names_the_seed(self):
        """An invariant breach is a finding, not bad luck: no retry, and
        the campaign fails naming the unit and the offending seed."""
        units = _steady_units(1) + [
            WorkUnit(
                "fuzz/seed-0042",
                "test-breaches-invariant",
                {"where": "program fuzz-0042", "seed": 42},
            )
        ]
        campaign = run_units(units, workers=WORKERS)
        assert not campaign.ok
        bad = campaign.result_for("fuzz/seed-0042")
        assert bad.error_kind == "InvariantViolation"
        assert bad.attempts == 1, "deterministic failures are never retried"
        assert "seed 42" in bad.error
        with pytest.raises(CampaignError) as exc_info:
            campaign.raise_on_failure()
        message = str(exc_info.value)
        assert "fuzz/seed-0042" in message and "seed 42" in message

    def test_bad_scenario_config_fails_deterministically(self):
        unit = WorkUnit(
            "scenario/bad-config",
            "scenario",
            {"config": {"protocol": "no-such-protocol"}},
        )
        campaign = run_units([unit], workers=WORKERS)
        bad = campaign.result_for("scenario/bad-config")
        assert not bad.ok
        assert bad.error_kind == "ConfigError"
        assert bad.attempts == 1

    def test_failure_digest_line_is_stable_across_serial_and_parallel(self):
        """Failed units digest identically serial vs pooled — campaigns
        with deterministic failures still differential-test cleanly."""
        units = [
            WorkUnit(
                "fuzz/seed-0042",
                "test-breaches-invariant",
                {"where": "program fuzz-0042", "seed": 42},
            )
        ]
        serial = run_units(units, workers=0)
        pooled = run_units(units, workers=WORKERS)
        assert serial.campaign_digest() == pooled.campaign_digest()


class TestFuzzCampaignFailureReporting:
    def test_fuzz_cli_exits_nonzero_when_any_seed_fails(self, monkeypatch, capsys):
        """``python -m repro.experiments.fuzz`` must fail the build when a
        seed breaches invariants — CI keys off the exit code."""
        import repro.experiments.fuzz as fuzz_mod

        failing = fuzz_mod.FuzzResult(base_seed=0, n_programs=10)
        failing.failures.append(
            fuzz_mod.FuzzFailure(3, "InvariantViolation", "books do not balance")
        )

        monkeypatch.setattr(
            fuzz_mod, "run_fuzz", lambda **kwargs: failing
        )
        assert fuzz_mod.main(["--count", "10"]) == 1

    def test_fuzz_cli_exits_zero_on_a_clean_campaign(self):
        from repro.experiments.fuzz import main

        assert main(["--count", "3"]) == 0
