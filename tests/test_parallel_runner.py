"""Differential serial-vs-parallel harness for ``repro.parallel``.

The headline guarantee of the parallel runner: fanning work out to a
process pool changes *nothing* about the results.  Every suite here pins
byte-for-byte equality between a serial (``workers=0``, in-process) run
and a pooled run — for a Figure-7 sweep, the pinned 20-seed fuzz corpus,
a chaos fault-matrix cell, and the golden-pinned library program — plus
a Hypothesis proof that the merge is invariant under completion order.

The pool size comes from ``REPRO_TEST_WORKERS`` (CI sets 4; the default
of 2 keeps single-core dev boxes fast).  Determinism must hold for any
value, so the suites only read it, never branch on it.
"""

import hashlib
import json
import os
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError, ConfigError
from repro.parallel import (
    CampaignResult,
    UnitResult,
    WorkUnit,
    fault_matrix_units,
    fig7_units,
    merge_results,
    register_executor,
    run_fig7_parallel,
    run_programs_parallel,
    run_units,
)
from repro.parallel.sweeps import fuzz_units, run_fuzz_parallel
from repro.experiments.fig7 import run_fig7
from repro.experiments.fuzz import run_fuzz
from tests.test_golden_regression import GOLDEN_OPF_DIGEST_SHA256

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

CORPUS_PATH = Path(__file__).parent / "data" / "scenario_fuzz_corpus.json"

#: A deliberately staggered executor: later-submitted units finish first,
#: so pooled completion order is the reverse of submission order.
def _sleepy_executor(payload):
    time.sleep(payload["sleep_s"])
    return f"slept={payload['sleep_s']!r} tag={payload['tag']}", {"tag": payload["tag"]}


register_executor("test-sleepy", _sleepy_executor, replace=True)


# -- figure sweeps -------------------------------------------------------------


class TestFig7Differential:
    GRID = dict(ratios=("1:1", "1:2"), speeds=(10.0,), mixes=("read",), total_ops=80)

    def test_campaign_digest_is_bit_identical_to_serial(self):
        units = fig7_units(**self.GRID)
        serial = run_units(units, workers=0)
        pooled = run_units(units, workers=WORKERS)
        assert serial.ok and pooled.ok
        assert pooled.campaign_digest() == serial.campaign_digest()
        # Not just the digest: every unit's full metrics rendering matches.
        for s, p in zip(serial.results, pooled.results):
            assert p.unit_id == s.unit_id
            assert p.digest == s.digest
            assert p.data == s.data

    def test_points_match_the_serial_harness_exactly(self):
        serial_points = run_fig7(**self.GRID)
        pooled_points = run_fig7_parallel(workers=WORKERS, print_table=True, **self.GRID)
        assert pooled_points == serial_points

    def test_unit_digest_matches_a_direct_scenario_run(self):
        from tests.conftest import build_fig7_cell

        units = fig7_units(**self.GRID)
        unit = next(
            u for u in units if u.unit_id == "fig7/read/10G/1:2/nvme-opf"
        )
        campaign = run_units([unit], workers=WORKERS)
        direct = build_fig7_cell(
            ratio="1:2",
            total_ops=80,
            window_size=unit.payload["config"]["window_size"],
        ).run()
        assert campaign.results[0].digest == direct.metrics_digest()


class TestFig8Fig9Differential:
    FIG8 = dict(
        mixes=("read",),
        patterns=(1, 2),
        n_node_pairs=2,
        per_node_range=[1, 2],
        pairs_range=[1, 2],
        total_ops=60,
    )
    FIG9 = dict(
        modes=("write", "read"),
        patterns=(2,),
        n_node_pairs=2,
        ranks_per_node_max=2,
        particles_per_rank=16 * 1024,
        timesteps=1,
        dataset_load_us=2_000.0,
    )

    def test_fig8_curves_match_the_serial_harness_exactly(self):
        from repro.experiments.fig8 import run_fig8
        from repro.parallel.sweeps import fig8_units, run_fig8_parallel

        serial_curves = run_fig8(**self.FIG8)
        pooled_curves = run_fig8_parallel(workers=WORKERS, print_table=True, **self.FIG8)
        assert pooled_curves == serial_curves
        units = fig8_units(**self.FIG8)
        assert (
            run_units(units, workers=WORKERS).campaign_digest()
            == run_units(units, workers=0).campaign_digest()
        )

    def test_fig9_points_match_the_serial_harness_exactly(self):
        from repro.experiments.fig9 import run_fig9
        from repro.parallel.sweeps import fig9_units, run_fig9_parallel

        serial_points = run_fig9(**self.FIG9)
        pooled_points = run_fig9_parallel(workers=WORKERS, print_table=True, **self.FIG9)
        assert pooled_points == serial_points
        units = fig9_units(**self.FIG9)
        assert (
            run_units(units, workers=WORKERS).campaign_digest()
            == run_units(units, workers=0).campaign_digest()
        )


# -- the pinned fuzz corpus ----------------------------------------------------


class TestFuzzDifferential:
    def test_parallel_campaign_reproduces_the_pinned_corpus(self):
        corpus = json.loads(CORPUS_PATH.read_text())["programs"]
        seeds = [entry["seed"] for entry in corpus]
        assert seeds == sorted(seeds)
        n = max(seeds) + 1
        units = fuzz_units(n, base_seed=min(seeds), chunk_size=7, determinism_stride=0)
        campaign = run_units(units, workers=WORKERS)
        campaign.raise_on_failure()
        by_seed = {}
        for result in campaign.results:
            by_seed.update(result.data["seeds"])
        for entry in corpus:
            got = by_seed[entry["seed"]]
            assert got["signature_sha256"] == entry["signature_sha256"], (
                f"seed {entry['seed']}: generated program drifted in the worker"
            )
            assert got["digest_sha256"] == entry["digest_sha256"], (
                f"seed {entry['seed']}: replay digest drifted in the worker"
            )

    def test_parallel_fuzz_result_is_field_identical_to_serial(self):
        serial = run_fuzz(n_programs=30, base_seed=0)
        pooled = run_fuzz_parallel(
            30, base_seed=0, chunk_size=8, workers=WORKERS, print_table=True
        )
        assert dict(pooled.action_counts) == dict(serial.action_counts)
        assert pooled.determinism_checks == serial.determinism_checks
        assert [(f.seed, f.kind, f.message) for f in pooled.failures] == [
            (f.seed, f.kind, f.message) for f in serial.failures
        ]
        assert pooled.ok == serial.ok
        assert pooled.base_seed == serial.base_seed
        assert pooled.n_programs == serial.n_programs

    def test_run_fuzz_workers_flag_routes_through_the_pool(self):
        serial = run_fuzz(n_programs=12, base_seed=5)
        pooled = run_fuzz(n_programs=12, base_seed=5, workers=WORKERS)
        assert dict(pooled.action_counts) == dict(serial.action_counts)
        assert pooled.determinism_checks == serial.determinism_checks


# -- chaos fault-matrix cells --------------------------------------------------


class TestFaultMatrixDifferential:
    @pytest.mark.parametrize("kind", ["target_crash", "link_loss_burst"])
    def test_chaos_cell_digest_is_bit_identical_to_serial(self, kind):
        units = fault_matrix_units(kinds=[kind], total_ops=120)
        serial = run_units(units, workers=0)
        pooled = run_units(units, workers=WORKERS)
        assert serial.ok and pooled.ok
        assert pooled.campaign_digest() == serial.campaign_digest()
        assert pooled.results[0].digest == serial.results[0].digest
        # Chaos cells recover: the retry policy reports, never loses, ops.
        assert pooled.results[0].data["failed_ops"] == 0

    def test_full_matrix_runs_every_fault_kind_in_kind_order(self):
        from repro.parallel import FAULT_MATRIX, run_fault_matrix_parallel

        cells = run_fault_matrix_parallel(total_ops=100)
        assert [c.kind for c in cells] == sorted(FAULT_MATRIX)
        for cell in cells:
            assert len(cell.digest_sha256) == 64
            assert cell.goodput_ops > 0


# -- golden pins ---------------------------------------------------------------


class TestGoldenPins:
    def test_worker_replay_hits_the_pre_hardening_golden_pin(self):
        """The library fig7 program replayed in a *worker process* must
        reproduce the digest pinned before chaos hardening landed — the
        strongest cross-process determinism statement we can make."""
        envelopes = run_programs_parallel(names=["fig7-opf-1to2"], workers=WORKERS)
        assert envelopes[0].digest_sha256 == GOLDEN_OPF_DIGEST_SHA256

    def test_envelope_matches_in_process_replay(self):
        from repro.scenarios import replay
        from repro.scenarios.library import fig7_cell_program

        envelopes = run_programs_parallel(names=["fig7-opf-1to2"], workers=WORKERS)
        run = replay(fig7_cell_program())
        assert envelopes[0].digest == run.digest()
        assert envelopes[0].signature_sha256 == hashlib.sha256(
            run.program.signature().encode()
        ).hexdigest()


# -- merge determinism ---------------------------------------------------------


def _fake_results(n: int, rnd_attempts) -> list:
    return [
        UnitResult(
            unit_id=f"u{i:03d}",
            kind="test-sleepy",
            ok=(i % 7 != 3),
            digest=f"digest-{i}",
            data={"i": i},
            error_kind="" if i % 7 != 3 else "InvariantViolation",
            error="" if i % 7 != 3 else f"unit u{i:03d} breached",
            attempts=rnd_attempts[i],
        )
        for i in range(n)
    ]


class TestMergeDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=1, max_value=24))
    def test_merge_is_invariant_under_completion_order(self, data, n):
        """For ANY permutation of arrival order — and any provenance noise
        (attempts, pids, elapsed) — the merged order and the campaign
        digest are identical."""
        units = [WorkUnit(f"u{i:03d}", "test-sleepy", {}) for i in range(n)]
        attempts = data.draw(
            st.lists(st.integers(1, 3), min_size=n, max_size=n)
        )
        results = _fake_results(n, attempts)
        shuffled = data.draw(st.permutations(results))
        merged = merge_results(units, shuffled)
        reference = merge_results(units, results)
        assert [r.unit_id for r in merged] == [r.unit_id for r in reference]
        noisy = CampaignResult(results=merged, workers=8)
        clean = CampaignResult(results=reference, workers=0)
        assert noisy.campaign_digest() == clean.campaign_digest()

    def test_merge_rejects_duplicates(self):
        units = [WorkUnit("a", "test-sleepy", {})]
        result = UnitResult(unit_id="a", kind="test-sleepy", ok=True)
        with pytest.raises(CampaignError, match="duplicate"):
            merge_results(units, [result, result])

    def test_merge_rejects_unknown_units(self):
        units = [WorkUnit("a", "test-sleepy", {})]
        with pytest.raises(CampaignError, match="unknown unit"):
            merge_results(units, [UnitResult(unit_id="b", kind="test-sleepy", ok=True)])

    def test_merge_rejects_missing_units(self):
        units = [WorkUnit("a", "test-sleepy", {}), WorkUnit("b", "test-sleepy", {})]
        with pytest.raises(CampaignError, match="no result"):
            merge_results(units, [UnitResult(unit_id="a", kind="test-sleepy", ok=True)])

    def test_real_pool_reversed_completion_order_merges_identically(self):
        """Units engineered to complete in reverse submission order still
        merge into submission order with a serial-identical digest."""
        units = [
            WorkUnit(
                unit_id=f"sleepy/{i}",
                kind="test-sleepy",
                payload={"sleep_s": 0.3 - 0.09 * i, "tag": i},
            )
            for i in range(3)
        ]
        serial = run_units(units, workers=0)
        pooled = run_units(units, workers=3)
        assert [r.data["tag"] for r in pooled.results] == [0, 1, 2]
        assert pooled.campaign_digest() == serial.campaign_digest()


# -- argument validation -------------------------------------------------------


class TestValidation:
    def test_negative_workers_is_a_config_error_naming_the_key(self):
        with pytest.raises(ConfigError, match="'workers'"):
            run_units([], workers=-1)

    def test_bool_workers_is_rejected(self):
        with pytest.raises(ConfigError, match="'workers'"):
            run_units([], workers=True)

    def test_oversized_workers_is_rejected(self):
        with pytest.raises(ConfigError, match="'workers'"):
            run_units([], workers=1000)

    def test_bad_max_retries_is_a_config_error_naming_the_key(self):
        with pytest.raises(ConfigError, match="'max_retries'"):
            run_units([], max_retries=-1)

    def test_duplicate_unit_ids_are_rejected(self):
        units = [WorkUnit("same", "test-sleepy", {}), WorkUnit("same", "test-sleepy", {})]
        with pytest.raises(ConfigError, match="duplicate unit_id"):
            run_units(units)

    def test_unknown_kind_is_rejected_before_any_fork(self):
        with pytest.raises(ConfigError, match="unknown kind"):
            run_units([WorkUnit("u", "no-such-kind", {})], workers=WORKERS)

    def test_empty_unit_id_is_rejected(self):
        with pytest.raises(ConfigError, match="'unit_id'"):
            WorkUnit("", "test-sleepy", {})

    def test_fuzz_units_validate_seed_range_keys(self):
        with pytest.raises(ConfigError, match="'count'"):
            fuzz_units(0)
        with pytest.raises(ConfigError, match="'base_seed'"):
            fuzz_units(10, base_seed=-1)
        with pytest.raises(ConfigError, match="'chunk_size'"):
            fuzz_units(10, chunk_size=0)

    def test_fuzz_cli_validates_workers_and_seed_range(self):
        from repro.experiments.fuzz import main

        assert main(["--count", "0"]) == 2
        assert main(["--count", "10", "--workers", "-3"]) == 2
        assert main(["--count", "10", "--base-seed", "-1"]) == 2

    def test_runner_cli_rejects_bad_workers(self):
        from repro.experiments.runner import main

        assert main(["table1", "--workers", "-1"]) == 2

    def test_fault_matrix_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="'kinds'"):
            fault_matrix_units(kinds=["no_such_fault"])
