"""Tests for the phased (alternating-priority) workload generator."""

import pytest

from repro.cluster.node import InitiatorNode, TargetNode
from repro.core.flags import Priority
from repro.errors import WorkloadError
from repro.net import Fabric
from repro.simcore import Environment, RandomStreams
from repro.workloads import DEFAULT_PHASES, PhaseSpec, PhasedGenerator


def make_rig(protocol="nvme-opf", queue_depth=128):
    env = Environment()
    streams = RandomStreams(8)
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, streams, protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    initiator = inode.add_initiator(
        "app", tnode, protocol=protocol, queue_depth=queue_depth, window_size=16
    )
    env.run(until=initiator.connect())
    return env, initiator, tnode


def test_phases_run_in_order_and_complete():
    env, initiator, _ = make_rig()
    phases = [
        PhaseSpec(Priority.LATENCY, ops=4, queue_depth=1, op_mix="write"),
        PhaseSpec(Priority.THROUGHPUT, ops=64, queue_depth=32, op_mix="read"),
    ]
    gen = PhasedGenerator(env, initiator, phases=phases, rounds=2)
    env.run(until=gen.done)
    assert len(gen.results) == 4
    assert [r.spec.priority for r in gen.results] == [
        Priority.LATENCY, Priority.THROUGHPUT, Priority.LATENCY, Priority.THROUGHPUT,
    ]
    for result in gen.results:
        assert len(result.latencies) == result.spec.ops
        assert result.elapsed_us > 0


def test_phase_boundaries_do_not_interleave():
    """A phase's requests all complete before the next phase starts."""
    env, initiator, _ = make_rig()
    gen = PhasedGenerator(env, initiator, rounds=1)
    env.run(until=gen.done)
    for earlier, later in zip(gen.results, gen.results[1:]):
        assert later.started_at >= earlier.finished_at


def test_control_phase_latency_beats_bulk_wait():
    """On oPF, control requests keep low latency even though the same
    connection runs deep throughput-critical phases around them."""
    env, initiator, _ = make_rig()
    gen = PhasedGenerator(env, initiator, rounds=3)
    env.run(until=gen.done)
    control = gen.mean_control_latency()
    bulk = gen.results_for(Priority.THROUGHPUT)
    bulk_mean = sum(r.mean_latency_us for r in bulk) / len(bulk)
    assert control < bulk_mean
    assert gen.bulk_throughput_iops() > 0


def test_phased_works_on_baseline_runtime():
    env, initiator, _ = make_rig(protocol="spdk")
    gen = PhasedGenerator(env, initiator, rounds=1)
    env.run(until=gen.done)
    assert len(gen.results) == len(DEFAULT_PHASES)


def test_phased_coalescing_confined_to_tc_phases():
    env, initiator, tnode = make_rig()
    gen = PhasedGenerator(env, initiator, rounds=2)
    env.run(until=gen.done)
    stats = tnode.target.stats
    # TC phases coalesce (far fewer notifications than requests)...
    tc_ops = sum(r.spec.ops for r in gen.results_for(Priority.THROUGHPUT))
    assert stats.coalesced_notifications < tc_ops / 4
    # ...while every LS control op was answered individually.
    ls_ops = sum(r.spec.ops for r in gen.results_for(Priority.LATENCY))
    individual = stats.completion_notifications - stats.coalesced_notifications
    assert individual >= ls_ops


def test_phased_validation():
    env, initiator, _ = make_rig()
    with pytest.raises(WorkloadError):
        PhaseSpec(Priority.LATENCY, ops=0, queue_depth=1)
    with pytest.raises(WorkloadError):
        PhaseSpec(Priority.LATENCY, ops=1, queue_depth=1, op_mix="rw50")
    with pytest.raises(WorkloadError):
        PhasedGenerator(env, initiator, phases=[], rounds=1)
    with pytest.raises(WorkloadError):
        PhasedGenerator(env, initiator, rounds=0)
