"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


from repro.core import CidQueue, DrainGroup, pack_flags, unpack_flags
from repro.errors import ProtocolError
from repro.metrics.percentile import P2Quantile, exact_percentile
from repro.nvmeof.capsule import Cqe, OPCODE_FLUSH, OPCODE_READ, OPCODE_WRITE, Sqe
from repro.nvmeof.pdu import C2HDataPdu, CapsuleCmdPdu, CapsuleRespPdu, decode_pdu
from repro.simcore import Environment
from repro.simcore.rng import RandomStreams, lognormal_with_mean

# ------------------------------------------------------------ capsule codec ----

sqe_strategy = st.builds(
    Sqe,
    opcode=st.sampled_from([OPCODE_READ, OPCODE_WRITE, OPCODE_FLUSH]),
    cid=st.integers(0, 0xFFFF),
    nsid=st.integers(1, 0xFFFF),
    slba=st.integers(0, 2**63 - 1),
    nlb=st.integers(1, 0xFFFF),
    rsvd_priority=st.integers(0, 0xFF),
    rsvd_tenant=st.integers(0, 0xFF),
)


@given(sqe_strategy)
def test_sqe_roundtrip_property(sqe):
    back = Sqe.decode(sqe.encode())
    assert back.opcode == sqe.opcode
    assert back.cid == sqe.cid
    assert back.nsid == sqe.nsid
    assert back.rsvd_priority == sqe.rsvd_priority
    assert back.rsvd_tenant == sqe.rsvd_tenant
    if sqe.opcode != OPCODE_FLUSH:
        assert back.slba == sqe.slba
        assert back.nlb == sqe.nlb


@given(
    st.integers(0, 0xFFFF),
    st.integers(0, 0xFFFF),
    st.integers(0, 0xFFFF),
    st.integers(0, 0xFFFF),
    st.integers(0, 2**32 - 1),
)
def test_cqe_roundtrip_property(cid, status, sqid, sqhd, result):
    cqe = Cqe(cid=cid, status=status, sqid=sqid, sqhd=sqhd, result=result)
    assert Cqe.decode(cqe.encode()) == cqe


@given(sqe_strategy, st.integers(0, 1 << 20))
def test_capsule_cmd_pdu_roundtrip_property(sqe, data_len):
    pdu = CapsuleCmdPdu(sqe=sqe, data_len=data_len)
    back = decode_pdu(pdu.encode())
    assert back.sqe.cid == sqe.cid
    assert back.data_len == data_len
    assert back.wire_size == pdu.wire_size


@given(st.integers(0, 0xFFFF), st.booleans())
def test_capsule_resp_roundtrip_property(cid, coalesced):
    pdu = CapsuleRespPdu(cqe=Cqe(cid=cid), coalesced=coalesced)
    back = decode_pdu(pdu.encode())
    assert back.cqe.cid == cid
    assert back.coalesced == coalesced


@given(st.integers(0, 0xFFFF), st.integers(1, 1 << 24), st.integers(0, 1 << 30), st.booleans())
def test_c2h_data_roundtrip_property(cid, data_len, offset, last):
    pdu = C2HDataPdu(cid=cid, data_len=data_len, offset=offset, last=last)
    back = decode_pdu(pdu.encode())
    assert (back.cid, back.data_len, back.offset, back.last) == (cid, data_len, offset, last)


# ------------------------------------------------------------------- flags ----
@given(st.integers(0, 255))
def test_unpack_flags_never_crashes_on_valid_bits(byte):
    """Any byte either decodes to a consistent flag set or raises ProtocolError."""
    try:
        priority, draining = unpack_flags(byte)
    except ProtocolError:
        assert byte & ~0b11 or byte == 0b10  # unknown bits or LS+drain
    else:
        assert pack_flags(priority, draining) == byte


# --------------------------------------------------------------- CID queue ----
@given(st.lists(st.integers(0, 0xFFFF), unique=True, min_size=1, max_size=200),
       st.integers(0, 199))
def test_cid_queue_drain_through_is_prefix(cids, index):
    q = CidQueue()
    for cid in cids:
        q.push(cid)
    target = cids[index % len(cids)]
    drained = q.drain_through(target)
    k = cids.index(target) + 1
    assert drained == cids[:k]
    assert q.as_list() == cids[k:]
    assert all(c in q for c in cids[k:])
    assert not any(c in q for c in cids[:k])


@given(st.lists(st.integers(0, 0xFFFF), unique=True, max_size=100))
def test_cid_queue_space_tracks_length(cids):
    q = CidQueue()
    for cid in cids:
        q.push(cid)
    assert q.space_bytes == 2 * len(cids)
    assert len(q) == len(cids)


# -------------------------------------------------------------- drain group ----
@given(st.lists(st.integers(0, 0xFFFF), unique=True, min_size=1, max_size=64),
       st.randoms(use_true_random=False))
def test_drain_group_completes_iff_all_marked(cids, rnd):
    group = DrainGroup(tenant_id=0, drain_cid=cids[-1], cids=list(cids), formed_at=0.0)
    order = list(cids)
    rnd.shuffle(order)
    for i, cid in enumerate(order):
        done = group.mark_complete(cid)
        assert done == (i == len(order) - 1)
    assert group.complete


# -------------------------------------------------------------- percentiles ----
@given(
    st.lists(st.floats(min_value=0.001, max_value=1e6, allow_nan=False), min_size=50,
             max_size=500),
    st.sampled_from([0.5, 0.9, 0.99]),
)
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_p2_quantile_within_sample_range(samples, q):
    est = P2Quantile(q)
    for x in samples:
        est.add(x)
    assert min(samples) <= est.value <= max(samples)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1,
                max_size=200))
def test_exact_percentile_monotone_in_q(samples):
    p50 = exact_percentile(samples, 50)
    p90 = exact_percentile(samples, 90)
    p999 = exact_percentile(samples, 99.9)
    assert p50 <= p90 <= p999


# -------------------------------------------------------------------- rng ----
@given(st.floats(min_value=0.1, max_value=1e4), st.floats(min_value=0.0, max_value=1.5))
@settings(max_examples=25)
def test_lognormal_with_mean_hits_requested_mean(mean, cv):
    rng = RandomStreams(7).stream("x")
    samples = lognormal_with_mean(rng, mean, cv, size=4000)
    import numpy as np

    got = float(np.mean(samples))
    tolerance = 0.15 * mean if cv > 0 else 1e-9
    assert abs(got - mean) <= max(tolerance, 0.15 * mean * cv + 1e-9)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20)
def test_named_streams_reproducible_and_distinct(seed):
    a1 = RandomStreams(seed).stream("alpha").random(4).tolist()
    a2 = RandomStreams(seed).stream("alpha").random(4).tolist()
    b = RandomStreams(seed).stream("beta").random(4).tolist()
    assert a1 == a2
    assert a1 != b


# -------------------------------------------------------- engine invariants ----
@given(st.lists(st.floats(min_value=0.0, max_value=1e5, allow_nan=False), min_size=1,
                max_size=50))
@settings(max_examples=30)
def test_engine_time_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(st.lists(st.integers(1, 1000), min_size=1, max_size=40))
@settings(max_examples=30)
def test_store_preserves_fifo_under_any_sizes(items):
    from repro.simcore import Store

    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            got = yield store.get()
            out.append(got)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == items


# ------------------------------------------------------ TCP under random loss ----
@given(
    st.integers(0, 2**31 - 1),
    st.floats(min_value=0.0, max_value=0.15),
    st.integers(5, 40),
)
@settings(max_examples=25, deadline=None)
def test_tcp_exactly_once_in_order_under_random_loss(seed, loss_prob, n_messages):
    """Reliability invariant: any iid loss pattern on both directions still
    yields exactly-once, in-order message delivery."""
    import numpy as np

    from repro.net import Fabric

    env = Environment()
    fabric = Fabric(env, rate_gbps=10, propagation_us=1.0, queue_packets=512)
    fabric.add_node("c")
    fabric.add_node("s")
    a, b = fabric.connect("c", "s")
    rng = np.random.default_rng(seed)

    def lossy(packet):
        return bool(rng.random() < loss_prob)

    fabric.uplink("c").drop_filter = lossy
    fabric.downlink("s").drop_filter = lossy
    got = []
    b.deliver = got.append
    for i in range(n_messages):
        a.send_message(i, size=2048)
    env.run()
    assert got == list(range(n_messages))
    assert a.bytes_in_flight == 0


@given(st.integers(0, 2**31 - 1), st.integers(2, 30))
@settings(max_examples=20, deadline=None)
def test_rdma_exactly_once_in_order(seed, n_messages):
    """The RDMA binding's delivery invariant on a lossless fabric."""
    import numpy as np

    from repro.net import Fabric

    env = Environment()
    fabric = Fabric(env, rate_gbps=100, queue_packets=8192)
    fabric.add_node("c")
    fabric.add_node("s")
    a, b = fabric.connect_rdma("c", "s")
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 20000, size=n_messages)
    got = []
    b.deliver = got.append
    for i, size in enumerate(sizes):
        a.send_message(i, size=int(size))
    env.run()
    assert got == list(range(n_messages))


# --------------------------------------------------- end-to-end conservation ----
@given(st.integers(1, 2**31 - 1), st.integers(20, 120), st.sampled_from([1, 4, 16]))
@settings(max_examples=10, deadline=None)
def test_scenario_conservation_invariants(seed, total_ops, window):
    """For any seed/op-count/window: every submitted op completes exactly
    once, nothing is lost, and coalesced+individual responses cover all."""
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    cfg = ScenarioConfig(
        protocol="nvme-opf", network_gbps=100, total_ops=total_ops,
        window_size=window, warmup_us=0, seed=seed,
    )
    sc = Scenario.two_sided(cfg, tenants_for_ratio("1:1"))
    sc.run()
    for gen in sc.generators:
        assert gen.completed == min(gen.issued, gen.config.total_ops) or gen._stopped
        assert gen.inflight == 0
        assert gen.failed == 0
    target = sc.target_nodes[0].target
    # Every command the target received was eventually completed.
    assert target.stats.requests_completed == target.stats.commands_received
