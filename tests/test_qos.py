"""The repro.qos control plane: SLOs, telemetry, throttle, policies, reports.

Unit coverage for every qos module plus the integration acceptance runs:
the slo-guard must hold a latency SLO through a TC burst while keeping the
throttled tenants near the congestion knee, and the aimd-window policy must
re-find the Fig. 6 window peak online.  Everything is deterministic — the
determinism tests compare whole action logs byte-for-byte.
"""

import statistics

import pytest

from repro.cluster.scenario import ScenarioConfig
from repro.core.flags import Priority
from repro.errors import ConfigError
from repro.experiments import run_qos_aimd, run_qos_guard
from repro.metrics.percentile import P2Quantile, exact_percentile
from repro.qos.controller import QosController, TenantHandle, WARMUP_OPS
from repro.qos.policy import (
    ACTION_RATE,
    ACTION_WINDOW,
    AimdWindowPolicy,
    QosAction,
    QosPolicy,
    SloGuardPolicy,
    StaticPolicy,
    TenantView,
    make_policy,
)
from repro.qos.report import QosReport, SloTrack
from repro.qos.slo import KIND_LATENCY, KIND_MIXED, KIND_THROUGHPUT, SloSet, TenantSlo
from repro.qos.telemetry import (
    Ewma,
    MIN_TAIL_SAMPLES,
    RATE_WINDOW_TICKS,
    TelemetryHub,
    TenantTelemetry,
)
from repro.qos.throttle import TokenBucket
from repro.simcore.engine import Environment
from tests.conftest import build_fig7_cell


def lcg(seed=42, a=1103515245, c=12345, m=2**31):
    """Deterministic uniform stream in [0, 1) — no entropy APIs in tests."""
    x = seed
    while True:
        x = (a * x + c) % m
        yield x / m


# ---------------------------------------------------------------------------
# SLO specs
# ---------------------------------------------------------------------------
class TestTenantSlo:
    def test_kinds(self):
        assert TenantSlo("a", p99_ceiling_us=100.0).kind == KIND_LATENCY
        assert TenantSlo("a", throughput_floor_mbps=50.0).kind == KIND_THROUGHPUT
        assert (
            TenantSlo("a", p99_ceiling_us=100.0, throughput_floor_mbps=50.0).kind
            == KIND_MIXED
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"p99_ceiling_us": 0.0},
            {"p99_ceiling_us": -1.0},
            {"throughput_floor_mbps": 0.0},
        ],
    )
    def test_invalid_bounds_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TenantSlo("a", **kwargs)

    def test_unnamed_tenant_rejected(self):
        with pytest.raises(ConfigError):
            TenantSlo("", p99_ceiling_us=100.0)

    def test_slo_set_sorted_and_duplicate_free(self):
        slos = SloSet(
            [TenantSlo("b", p99_ceiling_us=1.0), TenantSlo("a", p99_ceiling_us=2.0)]
        )
        assert [slo.tenant for slo in slos] == ["a", "b"]
        assert "a" in slos and "c" not in slos
        assert len(slos) == 2
        assert slos.for_tenant("b").p99_ceiling_us == 1.0
        assert slos.for_tenant("missing") is None
        with pytest.raises(ConfigError):
            SloSet([TenantSlo("a", p99_ceiling_us=1.0)] * 2)


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------
class TestEwma:
    def test_first_update_seeds_the_value(self):
        ewma = Ewma(0.5)
        assert ewma.value is None
        assert ewma.update(10.0) == 10.0
        assert ewma.update(20.0) == 15.0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_alpha_validated(self, alpha):
        with pytest.raises(ConfigError):
            Ewma(alpha)


class _FakeRequest:
    def __init__(self, op, latency, nbytes, status=0):
        self.op = op
        self.latency = latency
        self.nbytes = nbytes
        self.status = status


class TestTenantTelemetry:
    def test_interval_accumulators_drain_on_snapshot(self):
        t = TenantTelemetry("a")
        t.observe(100.0, 4096)
        t.observe(300.0, 4096)
        s = t.snapshot(now=200.0, interval_us=200.0)
        assert s.ops == 2
        assert s.bytes_moved == 8192
        assert s.throughput_mbps == pytest.approx(8192 / 200.0)
        assert s.latency_max_us == 300.0
        assert s.latency_mean_us == 200.0
        # Drained: the next interval starts from zero.
        empty = t.snapshot(now=400.0, interval_us=200.0)
        assert empty.ops == 0 and empty.bytes_moved == 0
        assert empty.latency_mean_us is None

    def test_failed_completions_move_no_goodput(self):
        t = TenantTelemetry("a")
        t.observe(100.0, 4096, failed=True)
        s = t.snapshot(10.0, 10.0)
        assert s.ops == 1 and s.total_failed == 1
        assert s.bytes_moved == 0

    def test_idle_interval_does_not_decay_the_peak(self):
        t = TenantTelemetry("a")
        t.observe(500.0, 4096)
        busy = t.snapshot(100.0, 100.0)
        idle = t.snapshot(200.0, 100.0)
        assert idle.recent_peak_us == busy.recent_peak_us == 500.0

    def test_smoothed_rate_spans_idle_intervals(self):
        # One window-sized burst followed by idle ticks: the interval rate
        # spikes then zeroes, the smoothed rate amortises the burst.
        t = TenantTelemetry("a")
        t.observe(100.0, 100_000)
        burst = t.snapshot(100.0, 100.0)
        assert burst.throughput_mbps == pytest.approx(1000.0)
        assert burst.smoothed_mbps == pytest.approx(1000.0)
        for i in range(3):
            s = t.snapshot(200.0 + 100.0 * i, 100.0)
        assert s.throughput_mbps == 0.0
        assert s.smoothed_mbps == pytest.approx(100_000 / 400.0)

    def test_smoothed_rate_window_is_bounded(self):
        t = TenantTelemetry("a")
        for i in range(3 * RATE_WINDOW_TICKS):
            t.observe(100.0, 1000)
            s = t.snapshot(100.0 * (i + 1), 100.0)
        assert s.smoothed_mbps == pytest.approx(1000 / 100.0)

    def test_drain_markers_and_flushes_are_not_tenant_work(self):
        from repro.ssd.latency import OP_FLUSH, OP_READ

        t = TenantTelemetry("a")
        t.observe_request(_FakeRequest(OP_FLUSH, 999.0, 0))
        assert t.total_ops == 0
        t.observe_request(_FakeRequest(OP_READ, 100.0, 4096))
        assert t.total_ops == 1 and t.total_bytes == 4096
        t.observe_request(_FakeRequest(OP_READ, 100.0, 4096, status=7))
        assert t.total_failed == 1 and t.total_bytes == 4096

    def test_p99_estimate_gated_on_warmup(self):
        t = TenantTelemetry("a")
        for _ in range(MIN_TAIL_SAMPLES - 1):
            t.observe(100.0, 4096)
        assert t.p99_estimate is None
        t.observe(100.0, 4096)
        assert t.p99_estimate is not None

    def test_hub_registry(self):
        hub = TelemetryHub()
        tap_a = hub.register("a")
        hub.register("b")
        assert hub.names() == ["a", "b"]
        assert len(hub) == 2 and "a" in hub and "z" not in hub
        assert hub.get("a") is tap_a
        hub.tap("a")(_FakeRequest(1, 50.0, 4096))
        assert tap_a.total_ops == 1
        with pytest.raises(ConfigError):
            hub.register("a")


class TestP2AgainstStdlibQuantiles:
    """The streaming tail estimator vs statistics.quantiles (exact)."""

    @pytest.mark.parametrize("seed", [7, 42, 1234])
    def test_p99_tracks_exact_quantile_on_heavy_tail(self, seed):
        stream = lcg(seed)
        # Polynomial heavy tail: most samples near 100us, a long 100x tail.
        data = [100.0 + 9_900.0 * next(stream) ** 6 for _ in range(6000)]
        est = P2Quantile(0.99)
        for x in data:
            est.add(x)
        exact = statistics.quantiles(data, n=100)[98]
        assert est.value == pytest.approx(exact, rel=0.05)
        # And the stdlib agrees with the numpy path the repo already trusts.
        assert exact == pytest.approx(exact_percentile(data, 99.0), rel=0.02)


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate_mbps=0.0)
        with pytest.raises(ConfigError):
            TokenBucket(burst_bytes=0)
        with pytest.raises(ConfigError):
            TokenBucket().set_rate_mbps(-5.0, now=0.0)

    def test_unlimited_passes_everything_free(self):
        bucket = TokenBucket()
        assert bucket.unlimited
        assert bucket.reserve(10**9, now=0.0) == 0.0
        assert bucket.delays == 0

    def test_conformance_greedy_sender_is_paced_to_the_rate(self):
        """Long-run admitted bytes never exceed rate * time + burst."""
        rate = 10.0  # MB/s == bytes/us
        bucket = TokenBucket(rate_mbps=rate, burst_bytes=8192)
        now, sent = 0.0, 0
        for _ in range(500):
            wait = bucket.reserve(4096, now)
            now += wait  # greedy: send as soon as the bucket allows
            sent += 4096
            assert sent <= rate * now + 8192 + 4096
        # The deficit pacing converges to exactly the configured rate.
        assert sent / now == pytest.approx(rate, rel=0.02)
        assert bucket.delays > 0
        assert bucket.waited_us > 0.0

    def test_burst_allowance_passes_unpaced(self):
        bucket = TokenBucket(rate_mbps=1.0, burst_bytes=64 * 1024)
        assert bucket.reserve(64 * 1024, now=0.0) == 0.0
        assert bucket.reserve(1024, now=0.0) == pytest.approx(1024.0)

    def test_rate_change_settles_old_regime_first(self):
        bucket = TokenBucket(rate_mbps=1.0, burst_bytes=1024)
        bucket.reserve(2048, now=0.0)  # 1024 in deficit
        bucket.set_rate_mbps(100.0, now=512.0)  # 512 tokens refilled at 1 MB/s
        # Remaining deficit of 512 bytes drains at the NEW rate.
        assert bucket.reserve(0, now=512.0) == pytest.approx(512 / 100.0)

    def test_lifting_the_throttle(self):
        bucket = TokenBucket(rate_mbps=1.0, burst_bytes=1024)
        bucket.reserve(4096, now=0.0)
        bucket.set_rate_mbps(None, now=1.0)
        assert bucket.unlimited
        assert bucket.reserve(10**6, now=1.0) == 0.0

    def test_rearming_from_unlimited_grants_a_fresh_burst(self):
        bucket = TokenBucket(rate_mbps=None, burst_bytes=4096)
        bucket.reserve(10**6, now=0.0)
        bucket.set_rate_mbps(2.0, now=50.0)
        assert bucket.reserve(4096, now=50.0) == 0.0
        assert bucket.reserve(100, now=50.0) == pytest.approx(50.0)


# ---------------------------------------------------------------------------
# Policies (unit level, synthetic views)
# ---------------------------------------------------------------------------
def _view(
    name="tc0",
    priority=Priority.THROUGHPUT,
    ops=10,
    mbps=100.0,
    smoothed=None,
    peak=None,
    slo=None,
    violated=False,
    window=8,
    rate=None,
    qd=64,
):
    from repro.qos.telemetry import TelemetrySample

    sample = TelemetrySample(
        tenant=name,
        at_us=0.0,
        interval_us=100.0,
        ops=ops,
        bytes_moved=int(mbps * 100.0),
        throughput_mbps=mbps,
        smoothed_mbps=mbps if smoothed is None else smoothed,
        latency_max_us=peak or 0.0,
        latency_mean_us=None,
        ewma_latency_us=None,
        recent_peak_us=peak,
        p99_us=None,
        total_ops=ops,
        total_failed=0,
    )
    return TenantView(
        name=name,
        priority=priority,
        sample=sample,
        slo=slo,
        violated=violated,
        window=window,
        rate_mbps=rate,
        queue_depth=qd,
    )


class TestPolicyRegistry:
    def test_registry_names(self):
        assert isinstance(make_policy("static", None), StaticPolicy)
        assert isinstance(make_policy("aimd-window", None), AimdWindowPolicy)
        assert isinstance(make_policy("slo-guard", None), SloGuardPolicy)
        with pytest.raises(ConfigError):
            make_policy("nope", None)

    def test_static_rejects_parameters(self):
        with pytest.raises(ConfigError):
            make_policy("static", {"x": 1.0})

    def test_unknown_parameters_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("aimd-window", {"bogus": 1.0})
        with pytest.raises(ConfigError):
            make_policy("slo-guard", {"bogus": 1.0})

    def test_parameters_forwarded(self):
        aimd = make_policy("aimd-window", {"increase_step": 2, "hold_ticks": 1})
        assert aimd.increase_step == 2 and aimd.hold_ticks == 1
        guard = make_policy("slo-guard", {"guard_margin": 0.5})
        assert guard.guard_margin == 0.5

    def test_static_policy_never_acts(self):
        assert QosPolicy().decide([_view()]) == []
        assert StaticPolicy().decide([_view(violated=True)]) == []


class TestAimdWindowPolicy:
    def test_constructor_validation(self):
        for kwargs in (
            {"increase_step": 0},
            {"tolerance": 1.0},
            {"tolerance": -0.1},
            {"hold_ticks": 0},
        ):
            with pytest.raises(ConfigError):
                AimdWindowPolicy(**kwargs)

    def test_grows_while_throughput_holds(self):
        policy = AimdWindowPolicy(increase_step=4, hold_ticks=2)
        assert policy.decide([_view(mbps=100.0)]) == []  # epoch accumulating
        actions = policy.decide([_view(mbps=100.0)])
        assert actions == [QosAction("tc0", ACTION_WINDOW, 12.0)]

    def test_halves_on_regression(self):
        policy = AimdWindowPolicy(increase_step=4, hold_ticks=1, tolerance=0.05)
        policy.decide([_view(window=16, mbps=100.0)])  # first epoch: probe up
        actions = policy.decide([_view(window=16, mbps=50.0)])
        assert actions == [QosAction("tc0", ACTION_WINDOW, 8.0)]

    def test_small_dips_inside_tolerance_keep_growing(self):
        policy = AimdWindowPolicy(increase_step=2, hold_ticks=1, tolerance=0.10)
        policy.decide([_view(window=16, mbps=100.0)])
        actions = policy.decide([_view(window=16, mbps=95.0)])
        assert actions == [QosAction("tc0", ACTION_WINDOW, 18.0)]

    def test_ignores_ls_idle_and_windowless_tenants(self):
        policy = AimdWindowPolicy(hold_ticks=1)
        views = [
            _view(name="ls0", priority=Priority.LATENCY),
            _view(name="idle", ops=0),
            _view(name="spdk0", window=None),
        ]
        assert policy.decide(views) == []
        assert policy.decide(views) == []


class TestSloGuardPolicy:
    LS_SLO = TenantSlo("ls0", p99_ceiling_us=1000.0)

    def _ls(self, peak, violated=False):
        return _view(
            name="ls0",
            priority=Priority.LATENCY,
            peak=peak,
            slo=self.LS_SLO,
            violated=violated,
            window=None,
            qd=1,
        )

    def test_constructor_validation(self):
        for kwargs in (
            {"decrease_factor": 0.0},
            {"decrease_factor": 1.0},
            {"recover_step_frac": 0.0},
            {"min_share": 0.0},
            {"recover_after_ticks": 0},
            {"guard_margin": 1.5},
            {"headroom": 0.0},
        ):
            with pytest.raises(ConfigError):
                SloGuardPolicy(**kwargs)

    def test_breach_cuts_tc_rates_multiplicatively(self):
        policy = SloGuardPolicy(decrease_factor=0.5, min_share=0.1)
        views = [self._ls(peak=1200.0, violated=True), _view(mbps=400.0)]
        actions = policy.decide(views)
        assert actions == [QosAction("tc0", ACTION_RATE, 200.0)]

    def test_margin_triggers_before_the_legal_violation(self):
        policy = SloGuardPolicy(guard_margin=0.85)
        # peak 900 < ceiling 1000, but above the 850 margin: act now.
        actions = policy.decide([self._ls(peak=900.0), _view(mbps=400.0)])
        assert len(actions) == 1 and actions[0].value == 200.0

    def test_mid_episode_holds_while_the_backlog_drains(self):
        policy = SloGuardPolicy()
        breach = [self._ls(peak=1200.0, violated=True), _view(mbps=400.0)]
        first = policy.decide(breach)
        assert first  # the fresh-episode cut
        held = [
            self._ls(peak=1200.0, violated=True),
            _view(mbps=400.0, rate=first[0].value),
        ]
        # Ticks 2..escalate_after stay silent; the next boundary escalates.
        cuts = [policy.decide(held) for _ in range(policy.escalate_after_ticks)]
        assert all(not c for c in cuts[:-1])
        assert cuts[-1] and cuts[-1][0].value < first[0].value

    def test_recovery_climbs_to_the_remembered_cap_and_holds(self):
        policy = SloGuardPolicy(
            recover_after_ticks=1, recover_step_frac=0.5, headroom=0.9
        )
        # Learn a baseline, then breach at 400 MB/s -> cap 360, cut to 200.
        policy.decide([self._ls(peak=100.0), _view(mbps=400.0)])
        cut = policy.decide([self._ls(peak=1200.0, violated=True), _view(mbps=400.0)])
        assert cut[0].value == 200.0
        healthy = [self._ls(peak=100.0), _view(mbps=150.0, rate=200.0)]
        step = policy.decide(healthy)
        assert step == [QosAction("tc0", ACTION_RATE, 360.0)]  # clamped to cap
        at_cap = [self._ls(peak=100.0), _view(mbps=150.0, rate=360.0)]
        assert policy.decide(at_cap) == []  # parked just below the knee

    def test_contention_drop_releases_the_cap(self):
        policy = SloGuardPolicy(recover_after_ticks=1, recover_step_frac=1.0)
        burst = [
            self._ls(peak=1200.0, violated=True),
            _view(name="tc0", mbps=400.0),
            _view(name="tc1", mbps=400.0),
        ]
        policy.decide(burst)  # cap learned with two active TC tenants
        # tc1 goes silent long enough to count as gone...
        for _ in range(policy.idle_release_ticks + 1):
            views = [
                self._ls(peak=100.0),
                _view(name="tc0", mbps=150.0, rate=200.0),
                _view(name="tc1", ops=0, mbps=0.0, rate=200.0),
            ]
            actions = policy.decide(views)
        # ...and the survivor recovers all the way to unthrottled.
        assert QosAction("tc0", ACTION_RATE, None) in actions

    def test_idle_tenants_are_not_cut(self):
        policy = SloGuardPolicy()
        views = [self._ls(peak=1200.0, violated=True), _view(ops=0, mbps=0.0)]
        assert policy.decide(views) == []


# ---------------------------------------------------------------------------
# Controller (unit level, real Environment)
# ---------------------------------------------------------------------------
class _FakeOpfInitiator:
    def __init__(self, queue_depth=64, window_size=8):
        self.queue_depth = queue_depth
        self.window_size = window_size

    def apply_window(self, window):
        self.window_size = max(1, min(int(window), self.queue_depth // 2))
        return self.window_size


class _WindowlessInitiator:
    queue_depth = 64


def _handle(name="tc0", initiator=None, slo=None, priority=Priority.THROUGHPUT):
    return TenantHandle(
        name=name,
        priority=priority,
        initiator=initiator if initiator is not None else _FakeOpfInitiator(),
        telemetry=TenantTelemetry(name),
        throttle=TokenBucket(),
        slo=slo,
    )


class _AlwaysResize(QosPolicy):
    def decide(self, views):
        return [QosAction(v.name, ACTION_WINDOW, float(v.window + 1)) for v in views]


class TestController:
    def _controller(self, env, policy, handles, interval=100.0):
        report = QosReport(policy=policy.name, interval_us=interval)
        return QosController(env, policy, handles, report, interval_us=interval)

    def test_construction_validation(self):
        env = Environment()
        with pytest.raises(ConfigError):
            self._controller(env, StaticPolicy(), [_handle()], interval=0.0)
        with pytest.raises(ConfigError):
            self._controller(env, StaticPolicy(), [])

    def test_double_start_rejected_and_stop_idempotent(self):
        env = Environment()
        controller = self._controller(env, StaticPolicy(), [_handle()])
        controller.start()
        with pytest.raises(ConfigError):
            controller.start()
        controller.stop()
        controller.stop()

    def test_stopped_tick_does_not_reschedule(self):
        env = Environment()
        controller = self._controller(env, StaticPolicy(), [_handle()])
        controller.start()
        env.run(until=350.0)
        assert controller.report.ticks == 3
        controller.stop()
        env.run()  # the armed tick fires as a no-op; the queue drains
        assert controller.report.ticks == 3

    def test_actions_apply_and_log(self):
        env = Environment()
        handle = _handle()
        controller = self._controller(env, _AlwaysResize(), [handle])
        controller.start()
        env.run(until=250.0)
        assert handle.initiator.window_size == 10
        kinds = {a.kind for a in controller.report.actions}
        assert kinds == {ACTION_WINDOW}
        assert len(controller.report.actions) == 2
        controller.stop()
        assert controller.report.final_windows["tc0"] == 10

    def test_clamped_noop_resize_is_not_logged(self):
        env = Environment()
        handle = _handle(initiator=_FakeOpfInitiator(queue_depth=16, window_size=8))

        class Overshoot(QosPolicy):
            def decide(self, views):
                return [QosAction("tc0", ACTION_WINDOW, 999.0)]

        controller = self._controller(env, Overshoot(), [handle])
        controller.start()
        env.run(until=250.0)
        # 999 clamps to qd//2 == 8 == current: applied == old, nothing logged.
        assert handle.initiator.window_size == 8
        assert controller.report.actions == []

    def test_window_action_on_windowless_tenant_is_a_config_error(self):
        env = Environment()
        handle = _handle(initiator=_WindowlessInitiator())
        assert handle.window is None
        controller = self._controller(env, _AlwaysResize(), [handle])
        with pytest.raises(ConfigError):
            controller._apply(QosAction("tc0", ACTION_WINDOW, 4.0), now=0.0)

    def test_unknown_tenant_and_unknown_kind_rejected(self):
        env = Environment()
        controller = self._controller(env, StaticPolicy(), [_handle()])
        with pytest.raises(ConfigError):
            controller._apply(QosAction("ghost", ACTION_RATE, 1.0), now=0.0)
        with pytest.raises(ConfigError):
            controller._apply(QosAction("tc0", "paint", 1.0), now=0.0)

    def test_rate_actions_reach_the_bucket(self):
        env = Environment()
        handle = _handle()
        controller = self._controller(env, StaticPolicy(), [handle])
        controller.start()
        controller._apply(QosAction("tc0", ACTION_RATE, 25.0), now=0.0)
        assert handle.rate_mbps == 25.0
        assert len(controller.report.actions) == 1
        # Setting the same rate again is a no-op in the log.
        controller._apply(QosAction("tc0", ACTION_RATE, 25.0), now=100.0)
        assert len(controller.report.actions) == 1
        controller.stop()
        assert controller.report.final_rates["tc0"] == 25.0

    def test_slo_tracking_waits_for_warmup(self):
        env = Environment()
        slo = TenantSlo("tc0", throughput_floor_mbps=1.0)
        handle = _handle(slo=slo)
        controller = self._controller(env, StaticPolicy(), [handle])
        controller.start()
        env.run(until=150.0)
        assert controller.report.tracks == {}  # no completions yet: untracked
        for _ in range(WARMUP_OPS):
            handle.telemetry.observe(50.0, 4096)
        env.run(until=250.0)
        track = controller.report.tracks["tc0"]
        assert track.tracked_us == 100.0
        controller.stop()


# ---------------------------------------------------------------------------
# Report accounting
# ---------------------------------------------------------------------------
class TestQosReport:
    def test_attainment_books(self):
        track = SloTrack()
        track.mark(100.0, 100.0, violated=False)
        track.mark(200.0, 100.0, violated=True)
        track.mark(300.0, 100.0, violated=True)
        track.mark(400.0, 100.0, violated=False)
        assert track.attainment() == pytest.approx(0.5)
        assert track.intervals == [(100.0, 300.0)]

    def test_open_violation_closed_at_stop(self):
        report = QosReport(policy="slo-guard", interval_us=100.0)
        report.track("ls0", 100.0, 100.0, violated=True)
        report.close(150.0)
        assert report.violations("ls0") == [(0.0, 150.0)]
        assert SloTrack().attainment() is None
        assert report.attainment("ghost") is None
        assert report.violations("ghost") == []

    def test_action_log_rendering(self):
        report = QosReport(policy="slo-guard", interval_us=100.0)
        report.log_action(100.0, "tc0", ACTION_RATE, None, 327.68)
        report.log_action(200.0, "tc0", ACTION_RATE, 327.68, None)
        report.log_action(300.0, "tc0", ACTION_WINDOW, 8.0, 16.0)
        assert report.action_log().splitlines() == [
            "t=100.0us tc0 rate -->327.68",
            "t=200.0us tc0 rate 327.68->-",
            "t=300.0us tc0 window 8->16",
        ]

    def test_digest_items_and_summary(self):
        report = QosReport(policy="static", interval_us=100.0)
        report.ticks = 5
        report.track("ls0", 100.0, 100.0, violated=True)
        report.close(100.0)
        items = report.digest_items()
        assert items["ticks"] == 5
        assert items["violated_us/ls0"] == 100.0
        assert items["violation_intervals/ls0"] == 1
        lines = report.summary_lines()
        assert "policy=static" in lines[0]
        assert "ls0" in lines[1]


# ---------------------------------------------------------------------------
# Scenario config plumbing
# ---------------------------------------------------------------------------
class TestScenarioQosConfig:
    def test_invalid_policy_and_interval_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(qos_policy="nope")
        with pytest.raises(ConfigError):
            ScenarioConfig(qos_interval_us=0.0)

    def test_qos_enabled_gating(self):
        assert not ScenarioConfig().qos_enabled
        assert ScenarioConfig(qos_policy="slo-guard").qos_enabled
        assert ScenarioConfig(
            slos=(TenantSlo("ls0", p99_ceiling_us=100.0),)
        ).qos_enabled


def _scenario_result(policy="static", slos=(), seed=1, total_ops=200, **kw):
    return build_fig7_cell(
        total_ops=total_ops,
        seed=seed,
        qos_policy=policy,
        slos=tuple(slos),
        qos_interval_us=100.0,
        **kw,
    ).run()


class TestDigestRules:
    """The only-when-nonzero qos digest rule (golden regression)."""

    def test_no_control_plane_means_no_qos_lines(self):
        result = _scenario_result()
        assert result.qos == {} and result.qos_report is None
        assert "qos/" not in result.metrics_digest()

    def test_monitoring_plane_adds_only_nonzero_counters(self):
        plain = _scenario_result()
        monitored = _scenario_result(
            slos=[TenantSlo("ls0", p99_ceiling_us=50_000.0)]
        )
        digest = monitored.metrics_digest()
        qos_lines = [line for line in digest.splitlines() if line.startswith("qos/")]
        # A huge ceiling is never violated and static never acts: only the
        # tick counter is nonzero, so only the tick counter appears.
        assert qos_lines == [f"qos/ticks={monitored.qos_report.ticks!r}"]
        base = "\n".join(line for line in digest.splitlines() if not line.startswith("qos/"))
        # The monitoring plane observes without perturbing: stripping its
        # lines recovers the uninstrumented digest bit-for-bit.
        assert base == plain.metrics_digest()

    def test_violations_surface_in_the_digest(self):
        # 1500 TC ops keep the run long enough for the qd-1 LS tenant to
        # clear telemetry warmup (WARMUP_OPS completions at ~600us each).
        tight = _scenario_result(
            slos=[TenantSlo("ls0", p99_ceiling_us=100.0)], total_ops=1_500
        )
        digest = tight.metrics_digest()
        assert any(line.startswith("qos/violated_us/ls0=") for line in digest.splitlines())
        assert any(
            line.startswith("qos/violation_intervals/ls0=") for line in digest.splitlines()
        )


class TestDeterminism:
    def test_guard_runs_are_bit_identical(self):
        one = _scenario_result(
            "slo-guard", [TenantSlo("ls0", p99_ceiling_us=650.0)], total_ops=600
        )
        two = _scenario_result(
            "slo-guard", [TenantSlo("ls0", p99_ceiling_us=650.0)], total_ops=600
        )
        assert one.qos_report.actions  # the guard actually acted
        assert one.qos_report.action_log() == two.qos_report.action_log()
        assert one.metrics_digest() == two.metrics_digest()

    def test_aimd_runs_are_bit_identical(self):
        one = _scenario_result("aimd-window", total_ops=600)
        two = _scenario_result("aimd-window", total_ops=600)
        assert one.qos_report.actions
        assert one.qos_report.action_log() == two.qos_report.action_log()
        assert one.metrics_digest() == two.metrics_digest()

    def test_seeds_still_matter(self):
        one = _scenario_result("aimd-window", total_ops=600, seed=1)
        other = _scenario_result("aimd-window", total_ops=600, seed=2)
        assert one.metrics_digest() != other.metrics_digest()


# ---------------------------------------------------------------------------
# Acceptance: the paper-level behaviours
# ---------------------------------------------------------------------------
class TestGuardAcceptance:
    @pytest.fixture(scope="class")
    def guard(self):
        return run_qos_guard(total_ops=9_000)

    def test_slo_attained_under_the_burst(self, guard):
        assert guard.guarded_attainment >= 0.99
        assert guard.static_attainment < 0.60  # static provably fails here

    def test_tc_throughput_within_twenty_percent(self, guard):
        assert guard.tc_throughput_ratio >= 0.80

    def test_defence_actually_engaged(self, guard):
        assert guard.guarded.qos_report.actions
        assert guard.guarded.qos_report.throttle_delays > 0
        # Violations that remain are the initial burst transient, not a
        # steady-state oscillation.
        assert len(guard.violations) <= 2


class TestAimdAcceptance:
    GRID = (8, 16, 32)

    def _run(self, start_window):
        return run_qos_aimd(
            windows=self.GRID,
            total_ops_offline=1_200,
            total_ops_online=4_000,
            start_window=start_window,
        )

    def test_converges_from_below(self):
        result = self._run(start_window=4)
        assert result.offline_best_window in self.GRID
        assert result.converged

    def test_converges_from_above(self):
        result = self._run(start_window=64)
        assert result.converged
