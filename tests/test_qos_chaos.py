"""Chaos under the QoS control plane: throttling must not wedge the drain.

The slo-guard adds a third actor to the recovery story — admission pacing
delays sends while watchdogs, reconnects, and the oPF drain protocol are
all in flight.  These tests pin the interactions:

* a paced command is *held*, never lost: the watchdog re-arms instead of
  charging pacing time against the wire deadline, so a throttled tenant is
  not retried into exhaustion,
* recovery resends bypass admission (the bytes were debited on the first
  attempt), so a reconnect never restarts in pacing deficit,
* and the drain-protocol books balance exactly — every TC CID retired once,
  no window member stranded — with byte-identical same-seed reruns.

The fault shapes are the ones test_faults_opf.py proved survivable without
QoS; the retry deadline is set above the congested round trip so the
fault-free baseline records zero timeouts, making every recovery event in
the guarded runs attributable to the chaos + throttle interplay.
"""

import pytest

from repro.cluster.scenario import Scenario, ScenarioConfig
from repro.faults import FaultSchedule, RetryPolicy
from repro.qos import TenantSlo
from repro.workloads.mixes import tenants_for_ratio

POLICY = RetryPolicy(
    timeout_us=2_000.0,
    backoff_base_us=100.0,
    reconnect_delay_us=50.0,
    handshake_timeout_us=400.0,
)

CEILING_US = 650.0
TOTAL_OPS = 600


def _storm_schedule():
    return (
        FaultSchedule()
        .link_flap("sw->client0", 300.0, 150.0)
        .ssd_latency_spike("target0/ssd0", 600.0, 300.0, scale=8.0)
        .target_crash("target0", 1_100.0, 400.0)
    )


def _disconnect_schedule():
    return (
        FaultSchedule()
        .qpair_disconnect("tc0", 400.0)
        .link_loss_burst("sw->client0", 700.0, 300.0, p=0.3)
        .qpair_disconnect("tc1", 900.0)
    )


def _build(chaos, qos=True, seed=1):
    qos_kwargs = {}
    if qos:
        qos_kwargs = dict(
            qos_policy="slo-guard",
            slos=(TenantSlo("ls0", p99_ceiling_us=CEILING_US),),
            qos_interval_us=100.0,
        )
    cfg = ScenarioConfig(
        protocol="nvme-opf",
        network_gbps=10.0,
        op_mix="read",
        total_ops=TOTAL_OPS,
        window_size=16,
        seed=seed,
        chaos=chaos,
        retry_policy=POLICY,
        **qos_kwargs,
    )
    return Scenario.two_sided(cfg, tenants_for_ratio("1:2", op_mix="read"))


def _assert_windows_clean(scenario):
    """No drain wedge, no double retire: the post-run book balance.

    Every qpair is empty and every window queue fully retired — each TC CID
    exactly once (pushed == drained + evicted), nothing left behind.
    """
    for inode in scenario.initiator_nodes.values():
        for initiator in inode.initiators:
            assert initiator.qpair.outstanding == 0
            pm = getattr(initiator, "pm", None)
            if pm is None:
                continue
            q = pm.cid_queue
            assert len(q) == 0
            assert q.total_pushed == q.total_drained + q.total_evicted


@pytest.mark.parametrize(
    "schedule", [_storm_schedule, _disconnect_schedule], ids=["storm", "disconnect"]
)
class TestGuardedChaos:
    def test_throttled_chaos_loses_nothing(self, schedule):
        scenario = _build(schedule())
        result = scenario.run()
        report = result.qos_report

        # The guard genuinely engaged: rates were cut and sends were paced
        # while the chaos schedule was biting.
        assert report is not None
        assert len(report.actions) > 0
        assert report.throttle_delays > 0

        # Zero lost commands: every op completed, nothing exhausted, no
        # window wedged, no CID retired twice.
        assert result.failed_ops == 0
        assert result.recovery["exhausted"] == 0
        _assert_windows_clean(scenario)

    def test_guarded_chaos_is_digest_stable(self, schedule):
        one = _build(schedule()).run()
        two = _build(schedule()).run()
        assert one.metrics_digest() == two.metrics_digest()
        assert one.qos_report.action_log() == two.qos_report.action_log()
        assert one.fault_trace == two.fault_trace

    def test_guard_does_not_worsen_the_unguarded_outcome(self, schedule):
        plain = _build(schedule(), qos=False).run()
        guarded = _build(schedule()).run()
        assert plain.failed_ops == 0  # the baseline shape is survivable
        assert guarded.failed_ops == 0
        assert guarded.goodput_ops >= plain.goodput_ops


class TestPacingRecoveryInterplay:
    def test_paced_commands_are_held_not_exhausted(self):
        """Deep throttling + chaos must surface as pacing, not retry storms.

        With the watchdog deadline (2 ms) far below the pacing delays a
        50 MB/s cap produces at qd 128, a watchdog that billed pacing time
        against the wire deadline would exhaust most of the workload.
        """
        scenario = _build(
            FaultSchedule().ssd_latency_spike("target0/ssd0", 400.0, 400.0, scale=8.0)
        )
        # Pin the guard into a deep cut before the workload ramps.
        cfg = scenario.config
        assert cfg.qos_policy == "slo-guard"
        result = scenario.run()
        assert result.failed_ops == 0
        assert result.recovery["exhausted"] == 0
        _assert_windows_clean(scenario)

    def test_ls_slo_defended_through_the_storm(self):
        result = _build(_storm_schedule()).run()
        attained = result.qos_report.attainment("ls0")
        assert attained is not None and attained >= 0.95
