"""Property tests for the streaming telemetry estimators (Hypothesis).

The QoS control plane trusts three O(1) estimators; these properties pin
their edge behaviour on adversarial streams:

* :class:`~repro.metrics.percentile.P2Quantile` before its five markers
  initialise (fewer than 5 samples) and on all-duplicate streams,
* :class:`~repro.qos.telemetry.Ewma` first-sample seeding and the convex
  bound every later update must respect,
* :class:`~repro.qos.telemetry.TenantTelemetry` tail warm-up gating and
  peak monotony across idle intervals.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.metrics.percentile import P2Quantile, exact_percentile
from repro.qos.telemetry import Ewma, MIN_TAIL_SAMPLES, TenantTelemetry

#: Finite, float32-ish magnitudes: the estimators run on microsecond
#: latencies, not astronomical extremes, and the P² parabolic update is
#: numerically honest only away from overflow.
finite = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False, width=64
)
quantiles = st.floats(min_value=0.01, max_value=0.99)
alphas = st.floats(min_value=1e-6, max_value=1.0)


class TestP2QuantileSmallStreams:
    @given(samples=st.lists(finite, min_size=1, max_size=4), q=quantiles)
    def test_under_five_samples_returns_an_observed_sample(self, samples, q):
        # Before the markers initialise the estimate must be one of the raw
        # samples (a sorted-rank pick), never an extrapolation.
        est = P2Quantile(q)
        for x in samples:
            est.add(x)
        assert est.count == len(samples)
        assert est.value in samples

    @given(samples=st.lists(finite, min_size=1, max_size=4))
    def test_under_five_samples_median_is_order_insensitive(self, samples):
        forward, backward = P2Quantile(0.5), P2Quantile(0.5)
        for x in samples:
            forward.add(x)
        for x in reversed(samples):
            backward.add(x)
        assert forward.value == backward.value

    @given(q=quantiles)
    def test_empty_estimator_refuses_a_value(self, q):
        est = P2Quantile(q)
        with pytest.raises(ConfigError):
            est.value

    @given(value=finite, n=st.integers(min_value=1, max_value=200), q=quantiles)
    def test_all_duplicate_stream_is_exact(self, value, n, q):
        # Every marker collapses onto the duplicate: any quantile of a
        # constant stream is that constant, at any stream length (the
        # parabolic update must not divide by a zero marker gap).
        est = P2Quantile(q)
        for _ in range(n):
            est.add(value)
        assert est.value == value

    @given(samples=st.lists(finite, min_size=5, max_size=80), q=quantiles)
    def test_estimate_stays_within_observed_range(self, samples, q):
        est = P2Quantile(q)
        for x in samples:
            est.add(x)
        assert min(samples) <= est.value <= max(samples)

    @given(samples=st.lists(finite, min_size=1, max_size=4), q=quantiles)
    def test_small_stream_matches_exact_rank_pick(self, samples, q):
        # The documented <5-sample rule: a round-half-up rank into the
        # sorted samples.
        est = P2Quantile(q)
        for x in samples:
            est.add(x)
        ordered = sorted(samples)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        assert est.value == ordered[idx]


class TestP2AgainstExact:
    # P² carries no worst-case accuracy bound on adversarial streams (a
    # bimodal stream with a huge gap can park the middle marker far from the
    # exact median), so the accuracy properties below are the two that ARE
    # sound: exact equivariance under power-of-two scaling, and a
    # deterministic tolerance on seeded i.i.d. uniform streams.

    @given(
        samples=st.lists(finite, min_size=1, max_size=120),
        q=quantiles,
        scale=st.sampled_from([0.125, 0.5, 2.0, 8.0]),
    )
    @settings(max_examples=50)
    def test_power_of_two_scaling_commutes_exactly(self, samples, q, scale):
        # Every P² update is linear in the marker heights and its
        # comparisons are scale-invariant, and scaling by a power of two is
        # exact in binary floating point — so the two runs must agree to
        # the last bit, not just approximately.
        plain, scaled = P2Quantile(q), P2Quantile(q)
        for x in samples:
            plain.add(x)
            scaled.add(scale * x)
        assert scaled.value == scale * plain.value

    @pytest.mark.parametrize("seed", range(16))
    @pytest.mark.parametrize("q,percentile,tol", [(0.5, 50.0, 0.06), (0.99, 99.0, 0.03)])
    def test_tracks_exact_on_seeded_uniform_streams(self, seed, q, percentile, tol):
        # Deterministic accuracy floor on the streams telemetry actually
        # sees (i.i.d.-ish latencies): measured worst deviation over these
        # seeds is 0.025 (median) / 0.009 (p99) on uniform(0, 1), n=256.
        rng = random.Random(seed)
        samples = [rng.random() for _ in range(256)]
        est = P2Quantile(q)
        for x in samples:
            est.add(x)
        assert abs(est.value - exact_percentile(samples, percentile)) <= tol


class TestEwma:
    @given(x=finite, alpha=alphas)
    def test_first_update_seeds_exactly(self, x, alpha):
        ewma = Ewma(alpha)
        assert ewma.value is None
        assert ewma.update(x) == x
        assert ewma.value == x

    @given(first=finite, second=finite, alpha=alphas)
    def test_update_is_a_convex_combination(self, first, second, alpha):
        ewma = Ewma(alpha)
        ewma.update(first)
        result = ewma.update(second)
        lo, hi = min(first, second), max(first, second)
        assert lo - 1e-6 <= result <= hi + 1e-6

    @given(x=finite, alpha=alphas, n=st.integers(min_value=1, max_value=50))
    def test_constant_stream_is_a_fixed_point(self, x, alpha, n):
        ewma = Ewma(alpha)
        for _ in range(n):
            ewma.update(x)
        assert math.isclose(ewma.value, x, rel_tol=1e-12, abs_tol=1e-12)

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.0001])
    def test_alpha_bounds_enforced(self, alpha):
        with pytest.raises(ConfigError):
            Ewma(alpha)


class TestTenantTelemetryEdges:
    @given(
        latencies=st.lists(
            st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=MIN_TAIL_SAMPLES - 1,
        )
    )
    def test_tail_estimate_gated_until_warmup(self, latencies):
        t = TenantTelemetry("a")
        for latency in latencies:
            t.observe(latency, 4096)
        assert t.p99_estimate is None

    @given(
        latency=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        idle_ticks=st.integers(min_value=1, max_value=10),
    )
    def test_recent_peak_survives_idle_intervals(self, latency, idle_ticks):
        # The breach detector must not decay toward zero while a tenant is
        # throttled into silence — idle intervals leave the peak untouched.
        t = TenantTelemetry("a")
        t.observe(latency, 4096)
        busy = t.snapshot(now=100.0, interval_us=100.0)
        last = busy
        for i in range(idle_ticks):
            last = t.snapshot(now=200.0 + 100.0 * i, interval_us=100.0)
        assert last.recent_peak_us == busy.recent_peak_us == latency
        assert last.ops == 0 and last.latency_mean_us is None
