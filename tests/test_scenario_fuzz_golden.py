"""Pinned fuzz corpus: generator and replay digests are frozen per seed.

``tests/data/scenario_fuzz_corpus.json`` pins, for 20 seeds, the sha256 of
(a) the generated program's canonical JSON signature and (b) its replay
digest (metrics digest + checkpoint lines).  A drift in either means the
generator, the compiler, the engine, or the digest format changed behaviour
— if the change is intentional, regenerate the corpus:

    PYTHONPATH=src python - <<'PY'
    import hashlib, json
    from repro.scenarios import generate_program, replay
    doc = json.load(open("tests/data/scenario_fuzz_corpus.json"))
    for entry in doc["programs"]:
        prog = generate_program(entry["seed"])
        entry["signature_sha256"] = hashlib.sha256(prog.signature().encode()).hexdigest()
        entry["digest_sha256"] = hashlib.sha256(replay(prog).digest().encode()).hexdigest()
        entry["n_actions"] = len(prog.actions)
        entry["tenants"] = prog.tenants()
    json.dump(doc, open("tests/data/scenario_fuzz_corpus.json", "w"), indent=2)
    PY

and say so in the commit message.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.scenarios import generate_program, replay

CORPUS_PATH = Path(__file__).parent / "data" / "scenario_fuzz_corpus.json"
CORPUS = json.loads(CORPUS_PATH.read_text())["programs"]


def test_corpus_is_big_enough():
    assert len(CORPUS) >= 20
    assert len({entry["seed"] for entry in CORPUS}) == len(CORPUS)


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: f"seed{e['seed']}")
def test_pinned_seed_reproduces_program_and_digest(entry):
    program = generate_program(entry["seed"])
    assert program.name == entry["name"]
    assert len(program.actions) == entry["n_actions"]
    assert program.tenants() == entry["tenants"]
    signature_sha = hashlib.sha256(program.signature().encode()).hexdigest()
    assert signature_sha == entry["signature_sha256"], (
        "generated program drifted — generator behaviour changed for this seed"
    )
    run = replay(program)  # raises InvariantViolation on any breach
    digest_sha = hashlib.sha256(run.digest().encode()).hexdigest()
    assert digest_sha == entry["digest_sha256"], (
        "replay digest drifted — compiler/engine behaviour changed for this seed"
    )
