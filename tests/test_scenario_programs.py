"""Scenario programs: vocabulary, validation, serialization, compile, replay.

The tentpole suite for ``repro.scenarios``: actions reject malformed data
by name, programs validate resource-aware (no leaving tenants that never
joined, no faults on components the topology lacks), JSON round-trips are
signature-identical, and replays through the compiler are deterministic —
including the registered library programs, which must reproduce the same
digests as the hand-built scenarios they mirror.
"""

import hashlib
import json

import pytest

from repro.cluster.scenario import ScenarioConfig
from repro.errors import ConfigError, InvariantViolation, ScenarioProgramError
from repro.scenarios import (
    ACTION_TYPES,
    Advance,
    AssertInvariant,
    Checkpoint,
    FaultInject,
    ProgramRegistry,
    ScenarioProgram,
    SetWindow,
    SloChange,
    TenantJoin,
    TenantLeave,
    UsageBurst,
    action_from_dict,
    check_all,
    check_invariant,
    compile_program,
    replay,
)
from repro.scenarios import PROGRAM_FORMAT
from repro.scenarios.invariants import INV_BOOKS, INV_CID, INV_CONSERVATION, INV_SLO
from repro.scenarios.library import (
    FIG7_CELL,
    QOS_GUARD,
    fig7_cell_program,
    qos_guard_program,
    register_library_programs,
)
from tests.test_golden_regression import GOLDEN_OPF_DIGEST_SHA256


def _program(actions, name="t", config=None, **kw):
    base = {"protocol": "nvme-opf", "total_ops": 50, "seed": 3}
    base.update(config or {})
    return ScenarioProgram(name=name, config=base, actions=tuple(actions), **kw)


JOIN2 = (
    TenantJoin(tenant="a", priority="latency", total_ops=30),
    TenantJoin(tenant="b", priority="throughput"),
)


# ---------------------------------------------------------------------------
# Action vocabulary
# ---------------------------------------------------------------------------
class TestActions:
    @pytest.mark.parametrize(
        "bad",
        [
            lambda: Advance(dt_us=0.0),
            lambda: Advance(dt_us=-5.0),
            lambda: TenantJoin(tenant=""),
            lambda: TenantJoin(tenant="a", priority="urgent"),
            lambda: TenantJoin(tenant="a", queue_depth=-1),
            lambda: TenantJoin(tenant="a", op_mix="readz"),
            lambda: TenantJoin(tenant="a", total_ops=0),
            lambda: TenantLeave(tenant=""),
            lambda: UsageBurst(tenant="a", ops=0),
            lambda: UsageBurst(tenant="a", ops=5, queue_depth=0),
            lambda: UsageBurst(tenant="a", ops=5, op_mix="mix"),
            lambda: FaultInject(kind="meteor.strike", component="sw"),
            lambda: FaultInject(kind="link.down", component=""),
            lambda: FaultInject(kind="link.down", component="x", duration_us=-1.0),
            lambda: SloChange(tenant=""),
            lambda: SloChange(tenant="a", p99_ceiling_us=0.0),
            lambda: SloChange(tenant="a", throughput_floor_mbps=-2.0),
            lambda: SetWindow(tenant="", window=4),
            lambda: SetWindow(tenant="a", window=0),
            lambda: Checkpoint(label=""),
            lambda: AssertInvariant(invariant="perpetual-motion"),
        ],
    )
    def test_malformed_actions_rejected_eagerly(self, bad):
        with pytest.raises(ScenarioProgramError):
            bad()

    def test_conservation_is_not_a_midrun_invariant(self):
        with pytest.raises(ScenarioProgramError):
            AssertInvariant(invariant=INV_CONSERVATION)

    @pytest.mark.parametrize(
        "action",
        [
            Advance(dt_us=12.5),
            TenantJoin(tenant="a", priority="latency", queue_depth=2, op_mix="rw50", total_ops=9),
            TenantLeave(tenant="a"),
            UsageBurst(tenant="a", ops=7, queue_depth=16, op_mix="write"),
            FaultInject(kind="link.degrade", component="sw->client0", duration_us=40.0, params=(("scale", 3.0),)),
            SloChange(tenant="a", p99_ceiling_us=500.0),
            SloChange(tenant="a"),  # clear
            SetWindow(tenant="a", window=8),
            Checkpoint(label="mid"),
            AssertInvariant(invariant=INV_BOOKS),
        ],
    )
    def test_dict_round_trip(self, action):
        data = json.loads(json.dumps(action.to_dict()))  # via real JSON
        assert action_from_dict(data) == action

    def test_unknown_op_rejected(self):
        with pytest.raises(ScenarioProgramError, match="unknown action op"):
            action_from_dict({"op": "warp_drive"})

    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(ScenarioProgramError, match="typo_key"):
            action_from_dict({"op": "advance", "dt_us": 5.0, "typo_key": 1})

    def test_every_op_is_registered(self):
        assert sorted(ACTION_TYPES) == [
            "advance",
            "assert_invariant",
            "checkpoint",
            "fault_inject",
            "set_window",
            "slo_change",
            "tenant_join",
            "tenant_leave",
            "usage_burst",
        ]


# ---------------------------------------------------------------------------
# Program validation (resource-aware)
# ---------------------------------------------------------------------------
class TestProgramValidation:
    def test_minimal_program_validates(self):
        _program(JOIN2)

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioProgramError, match="name"):
            _program(JOIN2, name="")

    def test_no_tenants_rejected(self):
        with pytest.raises(ScenarioProgramError, match="joins no tenants"):
            _program([Advance(dt_us=5.0)])

    def test_duplicate_join_rejected(self):
        with pytest.raises(ScenarioProgramError, match="already joined"):
            _program([*JOIN2, TenantJoin(tenant="a")])

    def test_burst_separator_reserved(self):
        with pytest.raises(ScenarioProgramError, match="reserved"):
            _program([TenantJoin(tenant="a#burst0", total_ops=5)])

    def test_leave_requires_prior_join(self):
        with pytest.raises(ScenarioProgramError, match="never joined"):
            _program([*JOIN2, TenantLeave(tenant="ghost")])

    def test_double_leave_rejected(self):
        with pytest.raises(ScenarioProgramError, match="already left"):
            _program([*JOIN2, TenantLeave(tenant="a"), TenantLeave(tenant="a")])

    def test_burst_requires_joined_tenant(self):
        with pytest.raises(ScenarioProgramError, match="unjoined"):
            _program([*JOIN2, UsageBurst(tenant="ghost", ops=5)])

    def test_window_actions_require_opf(self):
        with pytest.raises(ScenarioProgramError, match="nvme-opf"):
            _program(
                [*JOIN2, SetWindow(tenant="b", window=4)],
                config={"protocol": "spdk"},
            )

    def test_slo_change_requires_control_plane(self):
        with pytest.raises(ScenarioProgramError, match="control plane"):
            _program([*JOIN2, SloChange(tenant="a", p99_ceiling_us=400.0)])

    def test_slo_change_allowed_with_qos(self):
        _program(
            [*JOIN2, SloChange(tenant="a", p99_ceiling_us=400.0)],
            config={"qos_policy": "slo-guard"},
        )

    @pytest.mark.parametrize(
        "kind,component",
        [
            ("link.down", "nowhere->sw"),
            ("nic.down", "client7"),
            ("switch.pressure", "sw2"),
            ("ssd.latency_spike", "target0/ssd9"),
            ("target.crash", "target5"),
            ("qpair.disconnect", "ghost"),
        ],
    )
    def test_fault_components_checked_against_topology(self, kind, component):
        with pytest.raises(ScenarioProgramError, match="no live"):
            _program(
                [*JOIN2, FaultInject(kind=kind, component=component)],
                config={"retry_policy": {"timeout_us": 1000.0}},
            )

    def test_faults_require_retry_policy(self):
        with pytest.raises(ScenarioProgramError, match="retry_policy"):
            _program([*JOIN2, FaultInject(kind="target.crash", component="target0", duration_us=100.0)])

    def test_unbounded_ls_only_program_rejected(self):
        with pytest.raises(ScenarioProgramError, match="never terminate"):
            _program([TenantJoin(tenant="a", priority="latency")])

    def test_ls_only_with_quota_accepted(self):
        _program([TenantJoin(tenant="a", priority="latency", total_ops=20)])

    def test_slo_for_unjoined_tenant_rejected(self):
        with pytest.raises(ScenarioProgramError, match="unjoined"):
            _program(
                JOIN2,
                config={
                    "qos_policy": "slo-guard",
                    "slos": [{"tenant": "ghost", "p99_ceiling_us": 100.0}],
                },
            )

    def test_non_program_config_keys_rejected(self):
        with pytest.raises(ScenarioProgramError, match="target_cls"):
            _program(JOIN2, config={"target_cls": None})

    def test_topology_bounds_validated(self):
        with pytest.raises(ScenarioProgramError):
            _program(JOIN2, n_target_nodes=0)
        with pytest.raises(ScenarioProgramError):
            _program(JOIN2, n_ssds=0)

    def test_duration_and_tenants_introspection(self):
        prog = _program([*JOIN2, Advance(dt_us=100.0), Advance(dt_us=50.0)])
        assert prog.duration_us == 150.0
        assert prog.tenants() == ["a", "b"]


# ---------------------------------------------------------------------------
# Serialization + registry
# ---------------------------------------------------------------------------
class TestSerialization:
    def test_json_round_trip_is_signature_identical(self):
        prog = _program(
            [
                *JOIN2,
                Advance(dt_us=100.0),
                FaultInject(
                    kind="ssd.latency_spike",
                    component="target0/ssd0",
                    duration_us=200.0,
                    params=(("scale", 4.0),),
                ),
                Checkpoint(label="x"),
            ],
            config={"retry_policy": {"timeout_us": 1000.0, "jitter_frac": 0.0}},
        )
        clone = ScenarioProgram.from_json(prog.to_json())
        assert clone.signature() == prog.signature()
        assert clone.actions == prog.actions

    def test_unknown_program_key_rejected(self):
        data = _program(JOIN2).to_dict()
        data["extra"] = 1
        with pytest.raises(ScenarioProgramError, match="extra"):
            ScenarioProgram.from_dict(data)

    def test_unsupported_format_rejected(self):
        data = _program(JOIN2).to_dict()
        data["format"] = "nvme-opf/scenario-program@99"
        with pytest.raises(ScenarioProgramError, match="format"):
            ScenarioProgram.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioProgramError, match="not valid JSON"):
            ScenarioProgram.from_json("{nope")

    def test_registry(self):
        registry = ProgramRegistry()
        prog = _program(JOIN2, name="one")
        registry.register(prog)
        assert "one" in registry and len(registry) == 1
        assert registry.get("one") is prog
        assert [p.name for p in registry] == ["one"]
        with pytest.raises(ScenarioProgramError, match="already registered"):
            registry.register(_program(JOIN2, name="one"))
        registry.register(_program(JOIN2, name="one"), replace=True)
        with pytest.raises(ScenarioProgramError, match="no program named"):
            registry.get("two")


# ---------------------------------------------------------------------------
# ScenarioConfig plumbing (regression: unknown keys must fail by name)
# ---------------------------------------------------------------------------
class TestScenarioConfigFromDict:
    def test_unknown_config_key_named_in_error(self):
        with pytest.raises(ConfigError, match="totle_ops"):
            ScenarioConfig.from_dict({"totle_ops": 100})

    def test_unknown_qos_param_named_in_error(self):
        # Regression: a typo'd/unsupported qos_params key used to be
        # silently ignored whenever no control plane was built.
        with pytest.raises(ConfigError, match="increese_step"):
            ScenarioConfig(qos_policy="aimd-window", qos_params={"increese_step": 2})

    def test_qos_params_checked_even_without_control_plane(self):
        with pytest.raises(ConfigError, match="static"):
            ScenarioConfig(qos_params={"increase_step": 2})

    def test_params_of_the_wrong_policy_rejected(self):
        with pytest.raises(ConfigError, match="min_share"):
            ScenarioConfig(qos_policy="aimd-window", qos_params={"min_share": 0.1})

    def test_valid_params_accepted(self):
        cfg = ScenarioConfig(qos_policy="slo-guard", qos_params={"min_share": 0.1})
        assert cfg.qos_params == {"min_share": 0.1}

    def test_sub_objects_built_from_plain_dicts(self):
        cfg = ScenarioConfig.from_dict(
            {
                "slos": [{"tenant": "a", "p99_ceiling_us": 500.0}],
                "qos_policy": "slo-guard",
                "retry_policy": {"timeout_us": 900.0},
            }
        )
        assert cfg.slos[0].tenant == "a"
        assert cfg.retry_policy.timeout_us == 900.0


# ---------------------------------------------------------------------------
# Compiler + replay
# ---------------------------------------------------------------------------
BASE_ACTIONS = (
    TenantJoin(tenant="ls0", priority="latency", total_ops=40),
    TenantJoin(tenant="tc0", priority="throughput"),
    Advance(dt_us=250.0),
    Checkpoint(label="early"),
    AssertInvariant(invariant=INV_BOOKS),
    AssertInvariant(invariant=INV_CID),
    AssertInvariant(invariant=INV_SLO),
    Advance(dt_us=400.0),
    Checkpoint(label="late"),
)


class TestCompilerReplay:
    def test_replay_is_deterministic_across_round_trip(self):
        prog = _program(BASE_ACTIONS)
        first = replay(prog)
        second = replay(ScenarioProgram.from_json(prog.to_json()))
        assert first.digest() == second.digest()

    def test_checkpoints_ride_on_the_digest(self):
        run = replay(_program(BASE_ACTIONS))
        assert [cp.label for cp in run.checkpoints] == ["early", "late"]
        rendered = run.digest().splitlines()
        assert rendered[-2].startswith("checkpoint/early@")
        assert rendered[-1].startswith("checkpoint/late@")
        # Books snapshots are per-tenant and monotone between checkpoints.
        early, late = run.checkpoints
        assert [name for name, *_ in early.books] == ["ls0", "tc0"]
        for (_, i0, c0, f0), (_, i1, c1, f1) in zip(early.books, late.books):
            assert (i1, c1, f1) >= (i0, c0, f0)

    def test_tenant_leave_stops_the_workload_early(self):
        quota = 500
        leave = _program(
            [
                TenantJoin(tenant="ls0", priority="latency", total_ops=quota),
                TenantJoin(tenant="tc0", priority="throughput"),
                Advance(dt_us=300.0),
                TenantLeave(tenant="ls0"),
            ]
        )
        run = replay(leave)
        assert run.scenario.generators_by_name["ls0"].completed < quota

    def test_set_window_changes_the_run(self):
        cfg = {"window_size": 16, "network_gbps": 10.0, "total_ops": 150}
        resize = [
            TenantJoin(tenant="ls0", priority="latency", total_ops=40),
            TenantJoin(tenant="tc0", priority="throughput"),
            Advance(dt_us=100.0),
            SetWindow(tenant="tc0", window=1),
        ]
        base = _program(resize[:-1], config=cfg)
        resized = _program(resize, config=cfg)
        assert replay(base).result.metrics_digest() != replay(resized).result.metrics_digest()

    def test_usage_burst_adds_synthetic_tenant_work(self):
        burst = _program(
            [
                *JOIN2,
                Advance(dt_us=200.0),
                UsageBurst(tenant="b", ops=25, queue_depth=16),
            ]
        )
        run = replay(burst)
        gen = run.scenario.generators_by_name["b#burst0"]
        assert gen.completed == 25

    def test_fault_inject_reaches_the_injector(self):
        prog = _program(
            [
                *JOIN2,
                Advance(dt_us=150.0),
                FaultInject(
                    kind="ssd.latency_spike",
                    component="target0/ssd0",
                    duration_us=300.0,
                    params=(("scale", 6.0),),
                ),
            ],
            config={"retry_policy": {"timeout_us": 4000.0, "jitter_frac": 0.0}},
        )
        run = replay(prog)
        assert "inject ssd.latency_spike" in run.result.fault_trace

    def test_slo_change_swaps_the_live_slo(self):
        prog = _program(
            [
                *JOIN2,
                Advance(dt_us=200.0),
                SloChange(tenant="a", p99_ceiling_us=123.0),
            ],
            config={"qos_policy": "slo-guard"},
        )
        run = replay(prog)
        handle = run.scenario.qos_controller.handle("a")
        assert handle.slo is not None and handle.slo.p99_ceiling_us == 123.0

    def test_compiled_program_runs_once(self):
        compiled = compile_program(_program(JOIN2))
        compiled.run()
        with pytest.raises(ScenarioProgramError, match="only run once"):
            compiled.run()

    def test_invariant_check_catches_cooked_books(self):
        run = replay(_program(JOIN2))
        gen = run.scenario.generators_by_name["b"]
        gen.completed += 1  # cook the books
        with pytest.raises(InvariantViolation, match="completed 51 > issued 50"):
            check_all(run.scenario, run.result)

    def test_unknown_invariant_name(self):
        run = replay(_program(JOIN2))
        with pytest.raises(InvariantViolation, match="unknown invariant"):
            check_invariant("entropy", run.scenario, run.result)


# ---------------------------------------------------------------------------
# Library programs: figure experiments as data
# ---------------------------------------------------------------------------
class TestLibraryPrograms:
    def test_fig7_cell_reproduces_the_golden_digest(self):
        run = replay(fig7_cell_program())
        digest = run.result.metrics_digest()
        assert hashlib.sha256(digest.encode()).hexdigest() == GOLDEN_OPF_DIGEST_SHA256

    def test_qos_guard_program_matches_direct_build(self):
        # Scaled down for test runtime; the program builder and the direct
        # scenario must agree byte-for-byte at any size.
        ops = 1_500
        program_digest = replay(qos_guard_program(total_ops=ops)).result.metrics_digest()
        from repro.core.flags import Priority
        from repro.qos.slo import TenantSlo
        from repro.workloads.mixes import LS_QUEUE_DEPTH, TC_QUEUE_DEPTH, TenantSpec
        from repro.cluster.scenario import Scenario

        cfg = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=10.0,
            op_mix="read",
            total_ops=ops,
            window_size=16,
            seed=1,
            qos_policy="slo-guard",
            slos=(TenantSlo("ls0", p99_ceiling_us=650.0),),
            qos_interval_us=100.0,
        )
        tenants = [
            TenantSpec("ls0", Priority.LATENCY, LS_QUEUE_DEPTH, "read"),
            TenantSpec("tc0", Priority.THROUGHPUT, TC_QUEUE_DEPTH, "read"),
            TenantSpec(
                "tc1", Priority.THROUGHPUT, TC_QUEUE_DEPTH, "read",
                start_delay_us=10_000.0,
            ),
        ]
        direct_digest = Scenario.two_sided(cfg, tenants).run().metrics_digest()
        assert program_digest == direct_digest

    def test_registration_is_idempotent(self):
        registry = ProgramRegistry()
        register_library_programs(registry)
        register_library_programs(registry)
        assert FIG7_CELL in registry and QOS_GUARD in registry
        assert len(registry) == 3


class TestLocatedActionErrors:
    """Malformed action lists must name the offending index and op."""

    def base(self) -> dict:
        return {
            "format": PROGRAM_FORMAT,
            "name": "locate",
            "config": {"total_ops": 50},
            "actions": [
                {"op": "tenant_join", "tenant": "a", "priority": "throughput"},
                {"op": "advance", "dt_us": 5.0},
            ],
        }

    def test_unknown_op_is_located(self):
        data = self.base()
        data["actions"].append({"op": "warp_drive"})
        with pytest.raises(
            ScenarioProgramError, match=r"action #2 \('warp_drive'\): unknown action op"
        ):
            ScenarioProgram.from_dict(data)

    def test_missing_field_is_located(self):
        data = self.base()
        data["actions"].insert(1, {"op": "slo_change"})
        with pytest.raises(ScenarioProgramError, match=r"action #1 \('slo_change'\)"):
            ScenarioProgram.from_dict(data)

    def test_non_dict_action_is_located(self):
        data = self.base()
        data["actions"].append("not-an-action")
        with pytest.raises(ScenarioProgramError, match=r"action #2 \('\?'\)"):
            ScenarioProgram.from_dict(data)

    def test_non_list_actions_rejected(self):
        data = self.base()
        data["actions"] = {"op": "advance"}
        with pytest.raises(ScenarioProgramError, match="expected a list, got dict"):
            ScenarioProgram.from_dict(data)
