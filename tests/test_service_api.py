"""End-to-end HTTP API test against a live server on an ephemeral port.

The acceptance path from the issue, verbatim: submit a fig7-style program
(with SLOs, so ``slo_change`` is legal) over HTTP, stream at least three
telemetry snapshots mid-run, inject an ``slo_change`` at a future virtual
time, pause + checkpoint + resume, and prove the final sealed digest is
bit-identical to running the same (amended) program directly through the
compiler.  Plus the error-mapping contract: 404 for unknown sessions, 409
for illegal transitions, 400 for malformed payloads.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.errors import ConfigError, ServiceError
from repro.scenarios import ScenarioProgram, replay
from repro.scenarios.actions import Advance, SloChange
from repro.scenarios.library import fig7_cell_program
from repro.service import ServiceApiError, ServiceClient, ServiceServer

#: Future virtual instant for the injected slo_change.  Deliberately off
#: every 100us controller-tick boundary: the amended-program equivalence is
#: exact as long as the scripted callback shares no timestamp with another
#: event (see repro.service.session — pre-launch injections are exact
#: unconditionally).
INJECT_AT_US = 3_333.3


def slo_program_dict() -> dict:
    data = fig7_cell_program().to_dict()
    data["name"] = "fig7-opf-1to2-slo"
    data["config"]["slos"] = [{"tenant": "ls0", "p99_ceiling_us": 5_000.0}]
    return data


def amended_digest() -> str:
    """The ground truth: the submitted program with the injected action
    appended, replayed directly through the compiler."""
    data = slo_program_dict()
    data["actions"] = list(data["actions"]) + [
        Advance(dt_us=INJECT_AT_US).to_dict(),
        SloChange(tenant="ls0", p99_ceiling_us=900.0).to_dict(),
    ]
    return replay(ScenarioProgram.from_dict(data)).digest()


@pytest.fixture(scope="module")
def server():
    with ServiceServer(host="127.0.0.1", port=0, workers=2, slice_events=256) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.host, server.port)


def test_e2e_submit_stream_inject_checkpoint_resume(client):
    truth = amended_digest()
    session_id = client.submit(slo_program_dict())

    # Stream >= 3 telemetry snapshots while the run is live.
    cursor, streamed = 0, []
    while len(streamed) < 3:
        cursor, snapshots = client.telemetry(session_id, cursor=cursor, wait_ms=5_000)
        streamed.extend(snapshots)
        assert streamed and streamed[-1]["state"] not in ("finished", "failed"), (
            "the run sealed before three mid-run snapshots arrived; "
            "shrink slice_events"
        )
    assert [s["seq"] for s in streamed] == list(range(len(streamed)))
    live = streamed[-1]
    assert set(live["tenants"]) == {"ls0", "tc0", "tc1"}
    assert live["qos"]["ls0"]["slo"]["p99_ceiling_us"] == 5_000.0

    # Inject the SLO change at a future virtual instant.
    reply = client.inject(
        session_id, SloChange(tenant="ls0", p99_ceiling_us=900.0), at_us=INJECT_AT_US
    )
    assert reply["injected"]["at_us"] == INJECT_AT_US

    # Pause -> checkpoint -> restore as a clone -> resume both.
    assert client.pause(session_id)["state"] == "paused"
    checkpoint = client.checkpoint(session_id, label="e2e")
    assert checkpoint["format"] == "nvme-opf/session-checkpoint@1"
    assert checkpoint["injections"], "the injection must ride the checkpoint"
    clone_id = client.restore(json.loads(json.dumps(checkpoint)), start=True)
    assert clone_id != session_id
    assert client.resume(session_id)["state"] in ("running", "draining", "finished")

    original = client.wait(session_id, timeout_s=120.0)
    clone = client.wait(clone_id, timeout_s=120.0)
    assert original["state"] == "finished", original.get("error")
    assert clone["state"] == "finished", clone.get("error")

    # The acceptance bar: both sealed digests are bit-identical to the
    # amended program replayed directly through the compiler.
    assert original["digest"] == truth
    assert clone["digest"] == truth
    assert original["digest_sha256"] == clone["digest_sha256"]


def test_health_and_listing(client):
    health = client.health()
    assert health["ok"] is True
    session_id = client.submit(slo_program_dict(), start=False)
    sessions = {s["id"]: s for s in client.sessions()}
    assert sessions[session_id]["state"] == "created"
    assert client.status(session_id)["program"] == "fig7-opf-1to2-slo"


def test_error_mapping_404_409_400(client):
    with pytest.raises(ServiceApiError) as err:
        client.status("s404")
    assert err.value.status == 404

    session_id = client.submit(slo_program_dict(), start=False)
    with pytest.raises(ServiceApiError) as err:
        client.pause(session_id)  # created, not running
    assert err.value.status == 409
    with pytest.raises(ServiceApiError) as err:
        client.result(session_id)  # not finished
    assert err.value.status == 409

    with pytest.raises(ServiceApiError) as err:
        client.submit({"format": "nvme-opf/scenario-program@1", "name": ""})
    assert err.value.status == 400
    with pytest.raises(ServiceApiError) as err:
        client.restore({"format": "wrong"})
    assert err.value.status == 400
    with pytest.raises(ServiceApiError) as err:
        client.inject(session_id, {"op": "tenant_join", "tenant": "x",
                                   "priority": "latency"}, at_us=1.0)
    assert err.value.status == 400


def test_malformed_program_error_names_the_action(client):
    data = slo_program_dict()
    data["actions"] = list(data["actions"]) + [{"op": "slo_change"}]
    with pytest.raises(ServiceApiError) as err:
        client.submit(data)
    assert err.value.status == 400
    assert "action #3" in err.value.message
    assert "slo_change" in err.value.message


def test_raw_http_unknown_route_and_bad_json(server):
    base = server.address
    request = urllib.request.Request(f"{base}/nope")
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=10)
    assert err.value.code == 404

    request = urllib.request.Request(
        f"{base}/sessions",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=10)
    assert err.value.code == 400
    body = json.loads(err.value.read().decode())
    assert "not valid JSON" in body["error"]


# -- query / body / route validation ------------------------------------------
def _post(url, data):
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    return urllib.request.urlopen(request, timeout=10)


def test_query_and_body_validation(server, client):
    session_id = client.submit(slo_program_dict(), start=False)
    base = server.address

    for query in ("wait_ms=abc", "cursor=abc"):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{base}/sessions/{session_id}/telemetry?{query}", timeout=10
            )
        assert err.value.code == 400

    # POST to a GET-only verb is an unknown route, not a silent success.
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/sessions/{session_id}/telemetry", b"{}")
    assert err.value.code == 404

    # The body must be a JSON *object*.
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/sessions", b"[1, 2]")
    assert err.value.code == 400
    assert "JSON object" in json.loads(err.value.read().decode())["error"]

    # A submission must carry a program or a checkpoint.
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/sessions", b"{}")
    assert err.value.code == 400
    assert "submission needs" in json.loads(err.value.read().decode())["error"]

    # Action injection needs both 'action' and 'at_us'.
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(f"{base}/sessions/{session_id}/actions", b"{}")
    assert err.value.code == 400


def test_checkpoint_post_accepts_an_empty_body(server, client):
    # A created session may checkpoint; no body means label "".
    session_id = client.submit(slo_program_dict(), start=False)
    request = urllib.request.Request(
        f"{server.address}/sessions/{session_id}/checkpoint", method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        body = json.loads(response.read().decode())
    assert body["checkpoint"]["format"] == "nvme-opf/session-checkpoint@1"
    assert body["checkpoint"]["label"] == ""
    assert body["checkpoint"]["steps"] == 0


def test_bad_content_length_header(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        connection.putrequest("POST", "/sessions")
        connection.putheader("Content-Length", "nope")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        assert b"Content-Length" in response.read()
    finally:
        connection.close()


# -- server lifecycle ---------------------------------------------------------
def test_server_config_validation_and_double_start(server):
    with pytest.raises(ConfigError, match="key 'port'"):
        ServiceServer(port=70_000)
    with pytest.raises(ConfigError, match="key 'port'"):
        ServiceServer(port=True)
    with pytest.raises(ServiceError, match="already started"):
        server.start()


def test_serve_forever_runs_until_stopped():
    srv = ServiceServer(host="127.0.0.1", port=0, workers=1, slice_events=256)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        assert ServiceClient(srv.host, srv.port).health()["ok"] is True
    finally:
        srv.stop()
        thread.join(timeout=10)
    assert not thread.is_alive()


# -- client edges -------------------------------------------------------------
def test_client_submit_accepts_program_objects(client):
    program = ScenarioProgram.from_dict(slo_program_dict())
    session_id = client.submit(program, start=False)
    assert client.status(session_id)["state"] == "created"


def test_client_wait_times_out_through_409_retries(client):
    session_id = client.submit(slo_program_dict(), start=False)
    with pytest.raises(ServiceApiError) as err:
        client.wait(session_id, timeout_s=0.5, poll_ms=100)
    assert err.value.status == 408


def test_client_surfaces_unparseable_responses():
    class Rogue(BaseHTTPRequestHandler):
        def do_GET(self):
            body = b"not json"
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):
            pass

    rogue = HTTPServer(("127.0.0.1", 0), Rogue)
    thread = threading.Thread(target=rogue.serve_forever, daemon=True)
    thread.start()
    try:
        with pytest.raises(ServiceApiError, match="unparseable"):
            ServiceClient(*rogue.server_address).health()
    finally:
        rogue.shutdown()
        rogue.server_close()
        thread.join(timeout=10)
