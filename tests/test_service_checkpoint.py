"""Checkpoint/resume determinism over the generated program corpus.

The strongest claim the service makes: interrupting a session at ANY
checkpoint action, serializing it through JSON, and resuming in a fresh
process-worth of state produces the bit-identical sealed digest of an
uninterrupted run.  This suite proves it across five seed-generated corpus
programs (every generated program ends with a ``checkpoint`` action and
most carry mid-run ones), snapshotting at *every* checkpoint the program
fires — not just a convenient one — and replaying each snapshot to the end.
"""

import json

import pytest

from repro.scenarios import generate_program, replay
from repro.service import SimSession

#: Five corpus seeds: same generator the fuzz harness replays, so every
#: program here is known-valid and terminates quickly.
CORPUS_SEEDS = (1, 2, 3, 4, 5)


def drive_collecting_checkpoints(session: SimSession):
    """Run to completion, serializing the session at every checkpoint
    action its program fires; returns the JSON-round-tripped snapshots."""
    snapshots = []
    while not session.finished:
        before = len(session.compiled.checkpoints)
        session.advance(stop_on_checkpoint=True)
        if session.finished:
            break
        if len(session.compiled.checkpoints) > before:
            session.pause()
            checkpoint = session.make_checkpoint(
                label=session.compiled.checkpoints[-1].label
            )
            snapshots.append(json.loads(json.dumps(checkpoint)))
            session.resume()
    return snapshots


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_resume_from_every_checkpoint_matches_uninterrupted_run(seed):
    program = generate_program(seed)
    direct = replay(program).digest()

    session = SimSession(program, session_id=f"seed{seed}")
    snapshots = drive_collecting_checkpoints(session)
    assert session.state == "finished", session.error
    assert session.digest == direct  # single-stepping changed nothing

    # Generated programs always end with checkpoint("final"), so the suite
    # never silently degenerates to zero snapshots.
    assert snapshots, f"seed {seed} produced no checkpoints"
    labels = [snap["label"] for snap in snapshots]
    assert labels[-1] == "final"

    for snapshot in snapshots:
        restored = SimSession.from_checkpoint(
            snapshot, session_id=f"seed{seed}-{snapshot['label']}"
        )
        assert restored.state == "paused"
        restored.resume()
        restored.run_to_completion()
        assert restored.state == "finished", restored.error
        assert restored.digest == direct, (
            f"seed {seed}: resume from checkpoint {snapshot['label']!r} "
            f"(step {snapshot['steps']}) diverged from the uninterrupted run"
        )


def test_checkpoint_cursors_strictly_increase():
    program = generate_program(CORPUS_SEEDS[0])
    session = SimSession(program)
    snapshots = drive_collecting_checkpoints(session)
    steps = [snap["steps"] for snap in snapshots]
    assert steps == sorted(steps)
    assert all(b > a for a, b in zip(steps, steps[1:]))
