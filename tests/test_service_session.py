"""SimSession + SessionManager unit coverage: budgeted slices, the state
machine, injection validation, checkpoint integrity, telemetry cursors.

The digest-equality proofs live in ``test_service_checkpoint.py``; the
live-HTTP path in ``test_service_api.py``.  This module drives sessions
directly, where every transition and refusal is synchronous.
"""

import json
from collections import deque

import pytest

from repro.errors import ConfigError, ScenarioProgramError, ServiceError
from repro.scenarios import ScenarioProgram, replay
from repro.scenarios.actions import Advance, FaultInject, SetWindow, SloChange, TenantJoin
from repro.scenarios.library import fig7_cell_program, fig7_cell_spdk_program
from repro.service import SessionManager, SessionNotFound, SessionStateError, SimSession
from repro.service.session import InjectionRecord


def slo_program() -> ScenarioProgram:
    """The fig7 cell with a QoS plane (so slo_change injections are legal)."""
    data = fig7_cell_program().to_dict()
    data["name"] = "fig7-opf-1to2-slo"
    data["config"]["slos"] = [{"tenant": "ls0", "p99_ceiling_us": 5_000.0}]
    return ScenarioProgram.from_dict(data)


# -- slice driving ------------------------------------------------------------
def test_budgeted_advance_respects_max_events():
    session = SimSession(fig7_cell_program())
    n = session.advance(max_events=100)
    assert n == 100
    assert session.steps == 100
    assert session.state in ("running", "draining")


def test_unbounded_advance_runs_to_finish():
    session = SimSession(fig7_cell_program())
    session.advance()
    assert session.state == "finished"
    assert session.error is None
    assert session.digest and session.digest_sha256


def test_until_us_horizon_stops_the_clock():
    session = SimSession(fig7_cell_program())
    session.advance(until_us=50.0)
    assert session.env.now <= 50.0
    assert not session.finished
    before = session.steps
    session.advance(until_us=50.0)  # horizon already reached: no progress
    assert session.steps == before


def test_sliced_run_digest_matches_direct_replay():
    direct = replay(fig7_cell_program()).digest()
    session = SimSession(fig7_cell_program())
    while not session.finished:
        session.advance(max_events=97)
    assert session.state == "finished"
    assert session.digest == direct


def test_phases_progress_in_order():
    session = SimSession(fig7_cell_program())
    seen = [session.status()["phase"]]
    while not session.finished:
        session.advance(max_events=50)
        phase = session.status()["phase"]
        if phase != seen[-1]:
            seen.append(phase)
    # Monotone through the lifecycle; a short drain may fit inside one slice.
    order = ["connect", "workload", "drain", "done"]
    assert seen == [p for p in order if p in seen]
    assert seen[0] == "connect" and seen[-1] == "done" and "workload" in seen


# -- state machine ------------------------------------------------------------
def test_pause_requires_running():
    session = SimSession(fig7_cell_program())
    with pytest.raises(SessionStateError, match="only a running session"):
        session.pause()


def test_pause_resume_roundtrip_preserves_timeline():
    direct = replay(fig7_cell_program()).digest()
    session = SimSession(fig7_cell_program())
    session.advance(max_events=500)
    session.pause()
    assert session.state == "paused"
    session.pause()  # idempotent
    with pytest.raises(SessionStateError, match="cannot advance"):
        session.advance(max_events=1)
    session.resume()
    session.resume()  # idempotent
    session.advance()
    assert session.digest == direct


def test_finished_session_refuses_everything():
    session = SimSession(fig7_cell_program())
    session.advance()
    with pytest.raises(SessionStateError):
        session.resume()
    with pytest.raises(SessionStateError):
        session.pause()
    with pytest.raises(SessionStateError):
        session.inject(SloChange(tenant="ls0", p99_ceiling_us=1.0), at_us=1.0)
    with pytest.raises(SessionStateError, match="pause it before"):
        session.make_checkpoint()


def test_result_payload_gates_on_finish():
    session = SimSession(fig7_cell_program())
    with pytest.raises(SessionStateError, match="seals"):
        session.result_payload()
    session.advance()
    payload = session.result_payload()
    assert payload["state"] == "finished"
    assert payload["digest"] == session.digest
    assert payload["tc_throughput_mbps"] > 0
    json.dumps(payload)  # JSON-safe end to end


# -- injection validation -----------------------------------------------------
def test_inject_rejects_structural_actions():
    session = SimSession(slo_program())
    with pytest.raises(ServiceError, match="cannot be injected"):
        session.inject(TenantJoin(tenant="late", priority="throughput"), at_us=5.0)


def test_inject_rejects_unknown_tenant():
    session = SimSession(slo_program())
    with pytest.raises(ServiceError, match="unknown tenant 'nope'"):
        session.inject(SloChange(tenant="nope", p99_ceiling_us=1.0), at_us=5.0)


def test_inject_rejects_slo_change_without_qos_plane():
    session = SimSession(fig7_cell_program())  # no SLOs -> no control plane
    with pytest.raises(ServiceError, match="no QoS control plane"):
        session.inject(SloChange(tenant="ls0", p99_ceiling_us=1.0), at_us=5.0)


def test_inject_rejects_set_window_on_spdk():
    session = SimSession(fig7_cell_spdk_program())
    with pytest.raises(ServiceError, match="nvme-opf"):
        session.inject(SetWindow(tenant="tc0", window=8), at_us=5.0)


def test_inject_rejects_fault_without_chaos_plane():
    session = SimSession(slo_program())
    with pytest.raises(ServiceError, match="no chaos plane"):
        session.inject(
            {"op": "fault_inject", "kind": "ssd.latency_spike",
             "component": "target0/ssd0", "duration_us": 100.0,
             "params": [["scale", 4.0]]},
            at_us=5.0,
        )


def test_inject_rejects_past_and_malformed_times():
    session = SimSession(slo_program())
    while session.workload_start is None:
        session.advance(max_events=50)
    session.advance(max_events=500)
    with pytest.raises(ServiceError, match="not in the future"):
        session.inject(SloChange(tenant="ls0", p99_ceiling_us=1.0), at_us=0.0)
    with pytest.raises(ServiceError, match="finite"):
        session.inject(
            SloChange(tenant="ls0", p99_ceiling_us=1.0), at_us=float("inf")
        )
    with pytest.raises(ServiceError, match="finite"):
        session.inject(SloChange(tenant="ls0", p99_ceiling_us=1.0), at_us=-1.0)


# -- checkpoint integrity -----------------------------------------------------
def test_checkpoint_requires_pause():
    session = SimSession(fig7_cell_program())
    session.advance(max_events=100)
    with pytest.raises(SessionStateError, match="pause it before"):
        session.make_checkpoint()


def test_checkpoint_roundtrips_through_json():
    session = SimSession(fig7_cell_program())
    session.advance(max_events=800)
    session.pause()
    checkpoint = json.loads(json.dumps(session.make_checkpoint(label="x")))
    restored = SimSession.from_checkpoint(checkpoint, session_id="r")
    assert restored.state == "paused"
    assert restored.steps == session.steps
    assert restored.env.now == session.env.now
    assert restored.env._seq == session.env._seq


def test_checkpoint_rejects_malformed_payloads():
    with pytest.raises(ServiceError, match="must be a dict"):
        SimSession.from_checkpoint([1, 2])
    with pytest.raises(ServiceError, match="unsupported checkpoint format"):
        SimSession.from_checkpoint({"format": "nope"})
    session = SimSession(fig7_cell_program())
    checkpoint = session.make_checkpoint()
    bad = dict(checkpoint, extra=1)
    with pytest.raises(ServiceError, match="unknown checkpoint keys: \\['extra'\\]"):
        SimSession.from_checkpoint(bad)
    with pytest.raises(ServiceError, match=">= 0"):
        SimSession.from_checkpoint(dict(checkpoint, steps=-3))


def test_checkpoint_refuses_divergent_replay():
    session = SimSession(fig7_cell_program())
    session.advance(max_events=600)
    session.pause()
    checkpoint = session.make_checkpoint()
    tampered = dict(checkpoint, engine_seq=checkpoint["engine_seq"] + 7)
    with pytest.raises(ServiceError, match="diverged"):
        SimSession.from_checkpoint(tampered)
    tampered = dict(checkpoint, virtual_us=checkpoint["virtual_us"] + 1.0)
    with pytest.raises(ServiceError, match="diverged"):
        SimSession.from_checkpoint(tampered)


def test_injection_record_roundtrip_and_errors():
    record = InjectionRecord(
        action={"op": "slo_change", "tenant": "ls0"},
        at_us=5.0,
        at_step=10,
        pre_launch=True,
    )
    assert InjectionRecord.from_dict(record.to_dict()) == record
    with pytest.raises(ServiceError, match="expected a dict"):
        InjectionRecord.from_dict("nope")
    with pytest.raises(ServiceError, match="missing keys"):
        InjectionRecord.from_dict({"action": {}})


# -- telemetry ----------------------------------------------------------------
def test_telemetry_cursor_is_incremental():
    session = SimSession(slo_program())
    session.advance(max_events=400)
    cursor, snapshots = session.telemetry(cursor=0)
    assert snapshots and cursor == len(snapshots)
    again, newer = session.telemetry(cursor=cursor)
    assert newer == [] and again == cursor
    session.advance(max_events=400)
    cursor2, fresh = session.telemetry(cursor=cursor)
    assert len(fresh) == cursor2 - cursor > 0
    snap = fresh[-1]
    assert set(snap["tenants"]) == {"ls0", "tc0", "tc1"}
    assert snap["qos"]["ls0"]["slo"] == {
        "p99_ceiling_us": 5_000.0,
        "throughput_floor_mbps": None,
    }
    json.dumps(snap)  # snapshots must ship over JSON unmodified


def test_telemetry_reads_do_not_perturb_the_timeline():
    direct = replay(slo_program()).digest()
    session = SimSession(slo_program())
    while not session.finished:
        session.advance(max_events=250)
        session.telemetry(cursor=0)  # peek-only reads between every slice
        session.status()
    assert session.digest == direct


# -- the manager --------------------------------------------------------------
def test_manager_validates_its_config_keys():
    with pytest.raises(ConfigError, match="key 'workers'"):
        SessionManager(workers=0)
    with pytest.raises(ConfigError, match="key 'workers'"):
        SessionManager(workers=True)
    with pytest.raises(ConfigError, match="key 'workers'"):
        SessionManager(workers=10_000)
    with pytest.raises(ConfigError, match="key 'slice_events'"):
        SessionManager(workers=1, slice_events=0)


def test_manager_hosts_and_finishes_sessions():
    direct = replay(fig7_cell_program()).digest()
    manager = SessionManager(workers=2, slice_events=512)
    try:
        session = manager.submit(fig7_cell_program().to_dict())
        assert session.wait_for(("finished", "failed"), timeout_s=60.0) == "finished"
        assert session.digest == direct
        assert manager.get(session.id) is session
        listed = manager.list_sessions()
        assert [s["id"] for s in listed] == [session.id]
        with pytest.raises(SessionNotFound):
            manager.get("s999")
    finally:
        manager.shutdown()
        manager.shutdown()  # idempotent
        manager._enqueue(session.id)  # a closed manager drops enqueues


def test_manager_pause_checkpoint_restore_flow():
    direct = replay(fig7_cell_program()).digest()
    manager = SessionManager(workers=2, slice_events=256)
    try:
        session = manager.submit(fig7_cell_program())
        # Wait until the workload has made some progress, then freeze it.
        session.telemetry(cursor=2, wait_s=30.0)
        manager.pause(session.id)
        checkpoint = manager.checkpoint(session.id, label="mid")
        restored = manager.restore(json.loads(json.dumps(checkpoint)), start=True)
        manager.resume(session.id)
        assert session.wait_for(("finished",), timeout_s=60.0) == "finished"
        assert restored.wait_for(("finished",), timeout_s=60.0) == "finished"
        assert session.digest == direct
        assert restored.digest == direct
    finally:
        manager.shutdown()


# -- fault injection (chaos-plane programs) -----------------------------------
def chaos_program() -> ScenarioProgram:
    """The fig7 cell with a chaos plane (fault_inject + retry_policy), so
    live fault injection is legal."""
    data = fig7_cell_program().to_dict()
    data["name"] = "fig7-opf-1to2-chaos"
    data["config"]["retry_policy"] = {
        "timeout_us": 3_000.0,
        "max_retries": 3,
        "jitter_frac": 0.0,
    }
    data["actions"] = list(data["actions"]) + [
        {"op": "fault_inject", "kind": "ssd.latency_spike",
         "component": "target0/ssd0", "duration_us": 100.0,
         "params": [["scale", 4.0]]},
    ]
    return ScenarioProgram.from_dict(data)


def test_prelaunch_fault_injection_and_zero_step_checkpoint():
    session = SimSession(chaos_program())
    record = session.inject(
        FaultInject(kind="ssd.latency_spike", component="target0/ssd0",
                    duration_us=50.0, params=(("scale", 2.0),)),
        at_us=150.0,
    )
    assert record.pre_launch and record.at_step == 0

    # A zero-step checkpoint must carry the pre-launch fault and re-apply
    # it during restore (the cursor-0 drain path).
    checkpoint = json.loads(json.dumps(session.make_checkpoint(label="pre")))
    assert checkpoint["steps"] == 0 and checkpoint["injections"]
    restored = SimSession.from_checkpoint(checkpoint, session_id="fault-r")
    restored.resume()
    restored.run_to_completion()
    session.advance()
    assert session.state == "finished", session.error
    assert restored.state == "finished", restored.error
    assert restored.digest == session.digest


def test_fault_injection_validation():
    session = SimSession(chaos_program())
    with pytest.raises(ScenarioProgramError, match="target7"):
        session.inject(
            FaultInject(kind="ssd.latency_spike", component="target7/ssd0",
                        duration_us=50.0, params=(("scale", 2.0),)),
            at_us=5.0,
        )
    while session.workload_start is None:
        session.advance(max_events=50)
    with pytest.raises(ServiceError, match="before the workload launches"):
        session.inject(
            FaultInject(kind="ssd.latency_spike", component="target0/ssd0",
                        duration_us=50.0, params=(("scale", 2.0),)),
            at_us=9_000.0,
        )


def test_prelaunch_scripted_injection_matches_amended_program():
    at_us = 3_333.3
    amended = slo_program().to_dict()
    amended["actions"] = list(amended["actions"]) + [
        Advance(dt_us=at_us).to_dict(),
        SloChange(tenant="ls0", p99_ceiling_us=900.0).to_dict(),
    ]
    truth = replay(ScenarioProgram.from_dict(amended)).digest()

    session = SimSession(slo_program())
    record = session.inject(
        SloChange(tenant="ls0", p99_ceiling_us=900.0), at_us=at_us
    )
    assert record.pre_launch
    session.advance()
    assert session.state == "finished", session.error
    assert session.digest == truth


# -- lifecycle edges ----------------------------------------------------------
def test_start_and_cooperative_pause_request():
    session = SimSession(fig7_cell_program())
    session.start()
    assert session.state == "running"
    # A pause request raised mid-flight lands at the next slice boundary.
    session._pause_requested = True
    session.advance(max_events=50)
    assert session.state == "paused"
    # run_to_completion shrugs off a concurrent pause and finishes anyway.
    session.resume()
    session._pause_requested = True
    session.run_to_completion()
    assert session.state == "finished"


def test_replay_overshoot_seals_the_session_as_failed():
    session = SimSession(slo_program())
    session.advance(max_events=200)
    session._replay = deque([
        InjectionRecord(
            action=SloChange(tenant="ls0", p99_ceiling_us=1.0).to_dict(),
            at_us=1.0, at_step=50, pre_launch=True,
        )
    ])
    session.advance(max_events=10)
    assert session.state == "failed"
    assert "overshot" in session.error
    payload = session.result_payload()
    assert payload["state"] == "failed"
    assert payload["error"] == session.error
    with pytest.raises(SessionStateError):
        session.resume()


def test_checkpoint_with_disordered_injection_log_is_refused():
    session = SimSession(slo_program())
    checkpoint = session.make_checkpoint()

    def record(step):
        return InjectionRecord(
            action=SloChange(tenant="ls0", p99_ceiling_us=1.0).to_dict(),
            at_us=1.0, at_step=step, pre_launch=True,
        ).to_dict()

    bad = dict(checkpoint, injections=[record(5), record(3)])
    with pytest.raises(ServiceError, match="not cursor-ordered"):
        SimSession.from_checkpoint(bad)


def test_checkpoint_with_impossible_postlaunch_record_is_refused():
    session = SimSession(slo_program())
    checkpoint = session.make_checkpoint()
    bad = dict(checkpoint, injections=[
        InjectionRecord(
            action=SloChange(tenant="ls0", p99_ceiling_us=1.0).to_dict(),
            at_us=5.0, at_step=0, pre_launch=False,
        ).to_dict()
    ])
    with pytest.raises(ServiceError, match="checkpoint is inconsistent"):
        SimSession.from_checkpoint(bad)


# -- telemetry edges ----------------------------------------------------------
def test_snapshot_ring_discards_oldest():
    session = SimSession(fig7_cell_program())
    session._snapshots = deque(maxlen=2)
    for _ in range(3):
        session.advance(max_events=50)
    cursor, snapshots = session.telemetry(cursor=0)
    assert cursor == session._snapshot_seq
    assert len(snapshots) == 2
    assert [s["seq"] for s in snapshots] == [cursor - 2, cursor - 1]


def test_snapshot_before_launch_has_no_workload_clock():
    session = SimSession(fig7_cell_program())
    session.advance(max_events=1)
    _, snapshots = session.telemetry(cursor=0)
    assert snapshots[-1]["workload_us"] is None


def test_wait_and_long_poll_timeouts_expire():
    session = SimSession(fig7_cell_program())
    session.advance(max_events=50)
    assert session.wait_for(("finished",), timeout_s=0.05) in (
        "running", "draining"
    )
    cursor, snapshots = session.telemetry(
        cursor=session._snapshot_seq + 10, wait_s=0.05
    )
    assert snapshots == []
    assert cursor == session._snapshot_seq
