"""Differential suite for intra-scenario sharding (``repro.parallel.shards``).

The contract under test is absolute: a sharded run's ``ScenarioResult`` is
**bit-identical** to ``spec.build().run()`` — same metrics digest, same
per-tenant summaries, same fault trace — for every shard count, and every
configuration the partitioner cannot shard safely falls back to serial
with the reason logged on the ``repro.parallel.shards`` logger.

The shard counts cover the ISSUE acceptance grid (1, 2, 4); CI runs this
suite with ``REPRO_TEST_WORKERS=4`` so the 4-shard cells really fan out to
four processes on the 4-vCPU runner.
"""

import logging
import os

import pytest

from repro.cluster.scenario import ScenarioConfig
from repro.faults import FaultSchedule, RetryPolicy
from repro.parallel import ScenarioSpec, partition, run_sharded
from repro.workloads.mixes import tenants_for_ratio

SHARD_COUNTS = (1, 2, 4)

PROTOCOLS = ("spdk", "nvme-opf")


def _scaleout_spec(protocol, seed=7, total_ops=120, include_ls=False):
    """Fig8-scale scale-out: 4 node pairs x 3 tenants, components shape."""
    config = ScenarioConfig(
        protocol=protocol,
        network_gbps=10.0,
        op_mix="read",
        total_ops=total_ops,
        window_size=16,
        seed=seed,
    )
    return ScenarioSpec.scaleout(config, 4, 3, include_ls=include_ls)


def _two_sided_spec(protocol, ratio="0:4", seed=11, total_ops=120, **cfg):
    """Single-fabric star: every tenant on its own client node (windowed)."""
    config = ScenarioConfig(
        protocol=protocol,
        network_gbps=10.0,
        op_mix="read",
        total_ops=total_ops,
        window_size=16,
        seed=seed,
        **cfg,
    )
    return ScenarioSpec.two_sided(config, tenants_for_ratio(ratio))


def _assert_identical(spec, report, serial):
    __tracebackhide__ = True  # noqa: F841 - pytest traceback control
    assert report.result.metrics_digest() == serial.metrics_digest()
    assert report.result.per_tenant == serial.per_tenant
    assert report.result.fault_trace == serial.fault_trace


class TestComponentsDifferential:
    """Scale-out scenarios: connected-components mode, zero cross-shard traffic."""

    _serial_cache = {}

    @classmethod
    def _serial(cls, protocol):
        if protocol not in cls._serial_cache:
            cls._serial_cache[protocol] = _scaleout_spec(protocol).build().run()
        return cls._serial_cache[protocol]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_fig8_scale_grid_is_bit_identical(self, protocol, shards):
        spec = _scaleout_spec(protocol)
        report = run_sharded(spec, shards=shards)
        _assert_identical(spec, report, self._serial(protocol))
        if shards == 1:
            assert report.mode == "serial"
            assert report.fallback_reason is not None
        else:
            assert report.mode == "components"
            # Components exchange nothing: the three barriers carry only
            # the H*/T* anchors.
            assert report.messages == 0
            assert report.windows == 3

    def test_cid_books_reconcile_clean(self):
        report = run_sharded(_scaleout_spec("nvme-opf"), shards=4)
        assert report.mode == "components"
        assert report.books, "components run must report per-tenant CID books"
        assert all(book == (0, 0) for book in report.books.values())

    def test_phase_timings_cover_all_phases(self):
        report = run_sharded(_scaleout_spec("spdk"), shards=2)
        assert set(report.timings) == {"partition", "simulate", "exchange", "merge"}
        assert report.timings["simulate"] > 0.0

    def test_ls_only_scaleout_shards(self):
        config = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=10.0,
            op_mix="read",
            total_ops=120,
            ls_total_ops=80,
            window_size=16,
            seed=3,
        )
        spec = ScenarioSpec.scaleout(config, 3, 1, include_ls=True)
        serial = spec.build().run()
        report = run_sharded(spec, shards=3)
        assert report.mode == "components"
        _assert_identical(spec, report, serial)


class TestWindowedDifferential:
    """Single-fabric scenarios cut at the switch: lock-step windows."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("shards", (2, 4))
    def test_tc_only_star_is_bit_identical(self, protocol, shards):
        spec = _two_sided_spec(protocol)
        serial = spec.build().run()
        report = run_sharded(spec, shards=shards)
        assert report.mode == "windowed"
        assert report.lookahead_us and report.lookahead_us > 0
        assert report.messages > 0, "cut links must carry boundary frames"
        _assert_identical(spec, report, serial)

    def test_ls_only_star_is_bit_identical(self):
        config = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=10.0,
            op_mix="read",
            total_ops=120,
            ls_total_ops=80,
            window_size=16,
            seed=5,
        )
        spec = ScenarioSpec.two_sided(config, tenants_for_ratio("3:0"))
        serial = spec.build().run()
        report = run_sharded(spec, shards=2)
        assert report.mode == "windowed"
        _assert_identical(spec, report, serial)

    def test_lookahead_override_tightens_windows_not_results(self):
        spec = _two_sided_spec("spdk")
        serial = spec.build().run()
        loose = run_sharded(spec, shards=2)
        tight = run_sharded(spec, shards=2, lookahead_us=loose.lookahead_us / 4)
        assert tight.mode == "windowed"
        assert tight.windows >= loose.windows
        _assert_identical(spec, tight, serial)


class TestChaosSharded:
    """A fault-matrix cell sharded: full-chain replay, local application."""

    def _chaos_spec(self):
        chaos = (
            FaultSchedule()
            .link_flap("client0->sw", 300.0, 150.0)
            .ssd_latency_spike("target1/ssd0", 500.0, 250.0, scale=4.0)
            .nic_down("client2", 700.0, 120.0)
        )
        config = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=10.0,
            op_mix="read",
            total_ops=120,
            window_size=16,
            seed=13,
            chaos=chaos,
            retry_policy=RetryPolicy(
                timeout_us=400.0,
                backoff_base_us=50.0,
                reconnect_delay_us=50.0,
                handshake_timeout_us=200.0,
            ),
        )
        return ScenarioSpec.scaleout(config, 3, 2, include_ls=False)

    @pytest.mark.parametrize("shards", (2, 3))
    def test_chaos_cell_is_bit_identical_with_clean_books(self, shards):
        spec = self._chaos_spec()
        serial = spec.build().run()
        report = run_sharded(spec, shards=shards)
        assert report.mode == "components"
        _assert_identical(spec, report, serial)
        assert serial.fault_trace, "the cell must actually inject faults"
        assert all(book == (0, 0) for book in report.books.values())


class TestDegenerateShardings:
    """Every unshardable configuration: serial fallback, reason logged."""

    def _fallback(self, spec, shards, caplog, needle, **kwargs):
        with caplog.at_level(logging.INFO, logger="repro.parallel.shards"):
            report = run_sharded(spec, shards=shards, **kwargs)
        assert report.mode == "serial"
        assert report.shards == 1
        assert needle in report.fallback_reason
        assert any(needle in rec.getMessage() for rec in caplog.records)
        return report

    def test_single_shard_falls_back_byte_identical(self, caplog):
        spec = _two_sided_spec("nvme-opf")
        serial = spec.build().run()
        report = self._fallback(spec, 1, caplog, "shards <= 1")
        _assert_identical(spec, report, serial)

    def test_zero_lookahead_falls_back(self, caplog):
        spec = _two_sided_spec("spdk")
        serial = spec.build().run()
        report = self._fallback(spec, 2, caplog, "lookahead", lookahead_us=0.0)
        _assert_identical(spec, report, serial)

    def test_tc_ls_mix_falls_back(self, caplog):
        spec = _scaleout_spec("nvme-opf", include_ls=True)
        serial = spec.build().run()
        report = self._fallback(spec, 4, caplog, "quiesce")
        _assert_identical(spec, report, serial)

    def test_qos_control_plane_falls_back(self):
        spec = _two_sided_spec("nvme-opf", qos_policy="slo-guard")
        plan = partition(spec, 2)
        assert plan.mode == "serial"
        assert "QoS" in plan.fallback_reason

    def test_windowed_chaos_falls_back(self):
        chaos = FaultSchedule().link_flap("client0->sw", 300.0, 100.0)
        config = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=10.0,
            op_mix="read",
            total_ops=100,
            window_size=16,
            seed=2,
            chaos=chaos,
            retry_policy=RetryPolicy(timeout_us=400.0),
        )
        spec = ScenarioSpec.two_sided(config, tenants_for_ratio("0:3"))
        plan = partition(spec, 2)
        assert plan.mode == "serial"
        assert "chaos" in plan.fallback_reason

    def test_loss_faults_fall_back(self):
        chaos = FaultSchedule().link_loss_burst("client0->sw", 300.0, 100.0, p=0.3)
        config = ScenarioConfig(
            protocol="nvme-opf",
            network_gbps=10.0,
            op_mix="read",
            total_ops=100,
            window_size=16,
            seed=2,
            chaos=chaos,
            retry_policy=RetryPolicy(timeout_us=400.0),
        )
        spec = ScenarioSpec.scaleout(config, 3, 2, include_ls=False)
        plan = partition(spec, 2)
        assert plan.mode == "serial"
        assert "loss" in plan.fallback_reason

    def test_rdma_transport_falls_back_windowed(self):
        spec = _two_sided_spec("nvme-opf", transport="rdma")
        plan = partition(spec, 2)
        assert plan.mode == "serial"
        assert "RDMA" in plan.fallback_reason


class TestPartitionPlans:
    """Unit checks on the partitioner itself."""

    def test_components_plan_is_deterministic_and_covers_everything(self):
        spec = _scaleout_spec("spdk")
        one = partition(spec, 4)
        two = partition(spec, 4)
        assert one == two
        assert one.mode == "components"
        nodes = [n for a in one.shards for n in a.nodes]
        assert sorted(nodes) == sorted(name for _k, name, _n in spec.node_order)
        indices = sorted(i for a in one.shards for i in a.placement_indices)
        assert indices == list(range(len(spec.placements)))

    def test_windowed_plan_shapes(self):
        spec = _two_sided_spec("spdk")
        plan = partition(spec, 3)
        assert plan.mode == "windowed"
        assert plan.shards[0].nodes == tuple(spec.target_node_names)
        assert plan.shards[0].placement_indices == ()
        clients = [n for a in plan.shards[1:] for n in a.nodes]
        assert sorted(clients) == sorted(spec.initiator_node_names)

    def test_more_shards_than_components_clamps(self):
        spec = _scaleout_spec("spdk")  # 4 node pairs -> 4 components
        plan = partition(spec, 16)
        assert plan.mode == "components"
        assert len(plan.shards) == 4


class TestWorkersCliCpuCap:
    """``--workers`` beyond the machine's CPU count is a ConfigError (CLI)."""

    def test_runner_cli_rejects_oversubscription(self, capsys):
        from repro.experiments.runner import main

        over = (os.cpu_count() or 1) + 1
        if over > 64:
            pytest.skip("cpu_count + 1 exceeds MAX_WORKERS; cap hit first")
        assert main(["table1", "--workers", str(over)]) == 2
        err = capsys.readouterr().err
        assert "CPU count" in err and "'workers'" in err

    def test_fuzz_cli_rejects_oversubscription(self, capsys):
        from repro.experiments.fuzz import main

        over = (os.cpu_count() or 1) + 1
        assert main(["--count", "3", "--workers", str(over)]) == 2
        err = capsys.readouterr().err
        assert "CPU count" in err and "'workers'" in err
