"""Tests for condition events (AllOf / AnyOf / operator composition)."""

import pytest

from repro.errors import SimulationError
from repro.simcore import Environment


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, result[t1], result[t2])

    p = env.process(proc(env))
    env.run()
    assert p.value == (5.0, "a", "b")


def test_any_of_returns_at_first_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, t1 in result, t2 in result)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, True, False)


def test_and_operator():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) & env.timeout(2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.0


def test_or_operator():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) | env.timeout(2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1.0


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_condition_over_already_processed_events():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value=1)
        t2 = env.timeout(2.0, value=2)
        yield env.timeout(10.0)
        result = yield env.all_of([t1, t2])
        return (env.now, len(result))

    p = env.process(proc(env))
    env.run()
    assert p.value == (10.0, 2)


def test_condition_failure_propagates():
    env = Environment()
    ev = env.event()

    def proc(env):
        try:
            yield env.all_of([ev, env.timeout(10.0)])
        except ValueError:
            return "failed"

    def failer(env):
        yield env.timeout(1.0)
        ev.fail(ValueError("nope"))

    p = env.process(proc(env))
    env.process(failer(env))
    env.run()
    assert p.value == "failed"


def test_condition_value_mapping_interface():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="x")
        t2 = env.timeout(2.0, value="y")
        result = yield env.all_of([t1, t2])
        assert result == {t1: "x", t2: "y"}
        assert list(result) == [t1, t2]
        with pytest.raises(KeyError):
            result[env.event()]
        return True

    p = env.process(proc(env))
    env.run()
    assert p.value is True


def test_cross_environment_condition_rejected():
    env1, env2 = Environment(), Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(SimulationError):
        env1.all_of([t1, t2])
