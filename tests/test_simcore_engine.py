"""Unit tests for the discrete-event engine (environment, events, processes)."""

import pytest

from repro.errors import SimulationError
from repro.simcore import Environment, Interrupt


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="hello")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_events_process_in_time_order():
    env = Environment()
    seen = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        seen.append(tag)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert seen == ["a", "b", "c"]


def test_fifo_tie_break_at_equal_times():
    env = Environment()
    seen = []

    def proc(env, tag):
        yield env.timeout(1.0)
        seen.append(tag)

    for tag in range(10):
        env.process(proc(env, tag))
    env.run()
    assert seen == list(range(10))


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5


def test_run_until_time_excludes_events_at_later_times():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(10.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=5.0)
    assert fired == []
    env.run(until=20.0)
    assert fired == [10.0]


def test_run_until_past_raises():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 3.0


def test_process_return_value_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return 99

    def parent(env):
        value = yield env.process(child(env))
        return value + 1

    p = env.process(parent(env))
    env.run()
    assert p.value == 100


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    woken = []

    def waiter(env):
        value = yield ev
        woken.append((env.now, value))

    def trigger(env):
        yield env.timeout(7.0)
        ev.succeed("payload")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert woken == [(7.0, "payload")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def trigger(env):
        yield env.timeout(1.0)
        ev.fail(ValueError("boom"))

    p = env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert p.value == "caught boom"


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_unhandled_process_crash_aborts_run():
    env = Environment()

    def crasher(env):
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    env.process(crasher(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_watched_process_crash_is_handled_by_waiter():
    env = Environment()

    def crasher(env):
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    def watcher(env, victim):
        try:
            yield victim
        except RuntimeError:
            return "observed"

    victim = env.process(crasher(env))
    w = env.process(watcher(env, victim))
    env.run()
    assert w.value == "observed"


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()

    def proc(env):
        t = env.timeout(1.0, value="v")
        yield env.timeout(5.0)  # t is long processed by now
        got = yield t
        return (env.now, got)

    p = env.process(proc(env))
    env.run()
    assert p.value == (5.0, "v")


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
    assert not p.ok


def test_interrupt_wakes_process_with_cause():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            return ("interrupted", exc.cause, env.now)

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt("reason")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("interrupted", "reason", 3.0)


def test_interrupting_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def proc(env):
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()


def test_interrupted_process_can_continue_waiting():
    env = Environment()

    def sleeper(env):
        start = env.now
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(10.0)
        return env.now - start

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == 15.0  # 5 (interrupted) + 10


def test_peek_and_len():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0
    assert len(env) == 2


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_processes_see_consistent_now():
    env = Environment()
    times = []

    def proc(env):
        for _ in range(3):
            yield env.timeout(2.5)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [2.5, 5.0, 7.5]


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_run_until_already_processed_event_returns_value():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return "v"

    p = env.process(quick(env))
    env.run()
    # Running until an already-processed event returns immediately.
    assert env.run(until=p) == "v"


def test_run_until_failed_event_raises():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("x")

    p = env.process(boom(env))
    with pytest.raises(ValueError):
        env.run(until=p)
    # And again on the already-processed failure.
    with pytest.raises(ValueError):
        env.run(until=p)


def test_event_trigger_copies_outcome():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.succeed("payload")
    mirror.trigger(source)
    env.run()
    assert mirror.ok and mirror.value == "payload"
    fresh = env.event()
    with pytest.raises(SimulationError):
        fresh.trigger(env.event())  # untriggered source rejected


# -- budgeted incremental stepping (the service layer's engine primitive) ----
class TestAdvance:
    def test_advance_is_dispatch_identical_to_run(self):
        def build():
            env = Environment()
            log = []
            for delay in (3.0, 1.0, 2.0, 2.0, 5.0):
                env.call_later(delay, log.append)
            return env, log

        serial_env, serial_log = build()
        serial_env.run()
        stepped_env, stepped_log = build()
        while len(stepped_env):
            assert stepped_env.advance(max_events=2) > 0
        assert stepped_log == serial_log
        assert stepped_env.now == serial_env.now
        assert stepped_env._seq == serial_env._seq

    def test_advance_honors_every_budget(self):
        env = Environment()
        for delay in (1.0, 2.0, 3.0, 4.0):
            env.timeout(delay)
        assert env.advance(max_events=0) == 0
        assert env.advance(max_events=2) == 2
        assert env.now == 2.0
        assert env.advance(until_time=3.0) == 1  # the 4.0 entry stays queued
        assert len(env) == 1
        assert env.advance() == 1
        assert env.advance() == 0  # empty queue: a no-op, not an error

    def test_advance_stops_right_after_stop_event_processes(self):
        env = Environment()
        first = env.timeout(1.0)
        env.timeout(2.0)
        n = env.advance(stop=first)
        assert n == 1 and first.processed
        assert len(env) == 1

    def test_advance_rejects_bad_arguments(self):
        env = Environment()
        env.timeout(5.0)
        env.advance()
        with pytest.raises(SimulationError, match="max_events"):
            env.advance(max_events=-1)
        with pytest.raises(SimulationError, match="until_time"):
            env.advance(until_time=1.0)  # behind the clock (now == 5.0)
        with pytest.raises(SimulationError, match="until_time"):
            env.advance(until_time=float("inf"))
