"""Tests for tracing, sampling monitors, RNG streams, and units."""

import numpy as np
import pytest

from repro import units
from repro.simcore import Environment, RandomStreams, Sampler, Tracer
from repro.simcore.rng import lognormal_with_mean
from repro.simcore.trace import NULL_TRACER, TraceRecord


# ------------------------------------------------------------------ tracer ----
def test_tracer_disabled_by_default():
    tracer = Tracer()
    tracer.emit(1.0, "src", "kind", "payload")
    assert tracer.records == []


def test_tracer_records_when_enabled():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "link", "drop", {"pkt": 1})
    tracer.emit(2.0, "link", "send")
    tracer.emit(3.0, "ssd", "drop")
    assert len(tracer.records) == 3
    assert tracer.count(source="link") == 2
    assert tracer.count(kind="drop") == 2
    assert tracer.count(source="link", kind="drop") == 1
    assert list(tracer.filter(source="ssd"))[0].time == 3.0


def test_tracer_limit():
    tracer = Tracer(enabled=True, limit=2)
    for i in range(5):
        tracer.emit(float(i), "s", "k")
    assert len(tracer.records) == 2


def test_tracer_sink_invoked():
    tracer = Tracer(enabled=True)
    seen = []
    tracer.add_sink(seen.append)
    tracer.emit(1.0, "s", "k")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceRecord)


def test_tracer_clear():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "s", "k")
    tracer.clear()
    assert tracer.records == []


def test_null_tracer_is_noop():
    NULL_TRACER.emit(1.0, "s", "k")
    assert NULL_TRACER.records == []


# ----------------------------------------------------------------- sampler ----
def test_sampler_collects_at_interval():
    env = Environment()
    state = {"v": 0}

    def bump(env):
        while True:
            yield env.timeout(1.0)
            state["v"] += 1

    env.process(bump(env))
    sampler = Sampler(env, probe=lambda: state["v"], interval=2.0)
    env.run(until=10.0)
    assert len(sampler.samples) == 5  # t=0,2,4,6,8
    assert sampler.times == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert sampler.values[0] == 0
    assert sampler.mean() >= 0


def test_sampler_stop():
    env = Environment()
    sampler = Sampler(env, probe=lambda: 1, interval=1.0)

    def stopper(env):
        yield env.timeout(3.5)
        sampler.stop()
        sampler.stop()  # idempotent

    env.process(stopper(env))
    env.run()
    assert len(sampler.samples) == 4


def test_sampler_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Sampler(env, probe=lambda: 0, interval=0.0)


# --------------------------------------------------------------------- rng ----
def test_streams_are_independent():
    streams = RandomStreams(9)
    a = streams.stream("a")
    b = streams.stream("b")
    assert a is not b
    assert streams.stream("a") is a  # cached


def test_scoped_streams_prefix():
    streams = RandomStreams(9)
    streams.spawn("ssd0")
    direct = streams.stream("ssd0/read").random(3).tolist()
    # Fresh factory, same seed: the scoped path must match the full name.
    streams2 = RandomStreams(9)
    via_scope = streams2.spawn("ssd0").stream("read").random(3).tolist()
    assert direct == via_scope
    nested = streams2.spawn("node").spawn("dev").stream("x")
    assert nested is streams2.stream("node/dev/x")


def test_lognormal_zero_cv_is_deterministic():
    rng = np.random.default_rng(0)
    assert lognormal_with_mean(rng, 10.0, 0.0) == 10.0
    arr = lognormal_with_mean(rng, 10.0, 0.0, size=5)
    assert np.all(arr == 10.0)


def test_lognormal_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        lognormal_with_mean(rng, -1.0, 0.5)
    with pytest.raises(ValueError):
        lognormal_with_mean(rng, 1.0, -0.5)


# ------------------------------------------------------------------- units ----
def test_gbps_conversion():
    assert units.gbps_to_bytes_per_us(10) == pytest.approx(1250.0)
    assert units.gbps_to_bytes_per_us(100) == pytest.approx(12500.0)
    assert units.bytes_per_us_to_gbps(1250.0) == pytest.approx(10.0)


def test_time_conversions():
    assert units.us_to_ms(1500.0) == 1.5
    assert units.us_to_s(2_000_000.0) == 2.0
    assert units.MSEC == 1000.0
    assert units.SEC == 1_000_000.0


def test_rate_helpers():
    assert units.iops_from(1000, 1_000_000.0) == pytest.approx(1000.0)
    assert units.iops_from(1000, 0.0) == 0.0
    assert units.mbps_from(4_000_000, 1_000_000.0) == pytest.approx(4.0)
    assert units.mbps_from(1, 0.0) == 0.0


def test_block_size_constant():
    assert units.BLOCK_4K == 4096
