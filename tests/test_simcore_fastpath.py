"""Tests for the callback fast path: call_later/call_at, pooling, determinism.

The engine schedules two entry kinds on one heap — Events (process API) and
plain callbacks (``call_later``/``call_at``).  These tests pin the contract
that makes the fast path safe to use on hot paths:

* callbacks and events share ``(time, priority, seq)`` tie-breaking exactly;
* pooled Timeout recycling never resurrects a processed event;
* delay validation rejects NaN/inf before they can corrupt heap ordering;
* ``run(until=...)`` stops on time with callbacks still pending;
* a scenario implemented process-style and callback-style replays to the
  identical trace digest.
"""

import hashlib
import math

import pytest

from repro.errors import SimulationError
from repro.simcore import Environment, Event
from repro.simcore.events import URGENT


# ---------------------------------------------------------------------------
# Tie-breaking: callbacks and events on the one heap
# ---------------------------------------------------------------------------


def test_callbacks_and_events_interleave_by_seq_at_equal_time():
    """At equal (time, priority) ties break by scheduling order — across kinds."""
    env = Environment()
    order = []

    def cb(tag):
        order.append(tag)

    def proc(env, tag):
        yield env.timeout(5.0)
        order.append(tag)

    # Alternate the two APIs; all fire at t=5.0 with NORMAL priority.
    env.process(proc(env, "ev0"))            # seq for its timeout taken at start
    env.call_later(5.0, cb, "cb0")
    env.process(proc(env, "ev1"))
    env.call_later(5.0, cb, "cb1")

    env.run()
    # Process timeouts are scheduled when the generator first runs (at t=0,
    # via the URGENT Initialize events), i.e. *after* both call_later calls.
    assert order == ["cb0", "cb1", "ev0", "ev1"]


def test_call_later_priority_breaks_time_ties():
    env = Environment()
    order = []
    env.call_later(1.0, order.append, "normal")
    env.call_later(1.0, order.append, "urgent", priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_call_at_schedules_at_absolute_time():
    env = Environment(initial_time=10.0)
    seen = []

    def record(arg):
        seen.append((env.now, arg))

    env.call_at(12.5, record, "x")
    env.call_later(0.5, record, "y")
    env.run()
    assert seen == [(10.5, "y"), (12.5, "x")]


def test_call_at_rejects_the_past():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.call_at(9.0, lambda _: None)


# ---------------------------------------------------------------------------
# Satellite bugfix: NaN/inf delays must be rejected, not silently enqueued
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf"), -1.0])
def test_schedule_rejects_nonfinite_and_negative_delays(delay):
    env = Environment()
    ev = Event(env)
    ev._ok = True
    ev._value = None
    with pytest.raises(SimulationError):
        env.schedule(ev, delay=delay)
    assert len(env) == 0  # nothing reached the heap


@pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf"), -0.5])
def test_call_later_rejects_nonfinite_and_negative_delays(delay):
    env = Environment()
    with pytest.raises(SimulationError):
        env.call_later(delay, lambda _: None)
    assert len(env) == 0


@pytest.mark.parametrize("t", [float("nan"), float("inf")])
def test_call_at_rejects_nonfinite_times(t):
    env = Environment()
    with pytest.raises(SimulationError):
        env.call_at(t, lambda _: None)


@pytest.mark.parametrize("delay", [float("nan"), float("inf")])
def test_timeout_rejects_nonfinite_delays(delay):
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(delay)


def test_nan_delay_error_message_mentions_finiteness():
    env = Environment()
    with pytest.raises(SimulationError, match="finite"):
        env.call_later(float("nan"), lambda _: None)
    assert not math.isfinite(float("nan"))  # sanity on the premise


# ---------------------------------------------------------------------------
# Timeout pooling: recycling must never be observable
# ---------------------------------------------------------------------------


def test_pool_reuses_timeout_objects_across_process_yields():
    env = Environment()
    seen_ids = []

    def proc(env):
        for _ in range(4):
            t = env.timeout(1.0)
            seen_ids.append(id(t))
            yield t

    env.process(proc(env))
    env.run()
    # After the first yield completes, the object returns to the free list
    # and the next env.timeout() hands it back: all later ids repeat.
    assert len(set(seen_ids)) < len(seen_ids)


def test_pooled_timeout_fires_exactly_once_per_issue():
    """A recycled object must behave as a fresh event — one fire per issue."""
    env = Environment()
    fired = []

    def proc(env, tag, n):
        for i in range(n):
            got = yield env.timeout(1.0, value=(tag, i))
            fired.append(got)

    env.process(proc(env, "a", 5))
    env.process(proc(env, "b", 5))
    env.run()
    assert sorted(fired) == sorted([("a", i) for i in range(5)] + [("b", i) for i in range(5)])
    assert env.now == 5.0


def test_pool_does_not_capture_multi_waiter_timeouts():
    """A timeout with two waiters is not pool-eligible (a live reference
    could observe the recycled object)."""
    env = Environment()
    got = []

    def waiter(env, shared, tag):
        yield shared
        got.append(tag)

    shared = env.timeout(3.0)
    env.process(waiter(env, shared, "w1"))
    env.process(waiter(env, shared, "w2"))
    env.run()
    assert sorted(got) == ["w1", "w2"]
    assert env._timeout_pool == []  # two callbacks -> not recycled
    # The shared object is still inspectable (processed, not resurrected).
    assert shared.processed


def test_pool_does_not_capture_condition_members():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="t1")
        t2 = env.timeout(2.0, value="t2")
        result = yield t1 & t2
        return [e._value for e in result]

    p = env.process(proc(env))
    env.run()
    assert p.value == ["t1", "t2"]
    # Condition members carry an extra _check callback -> never pooled.
    assert env._timeout_pool == []


def test_unpooled_timeout_constructor_opts_out():
    from repro.simcore import Timeout

    env = Environment()

    def proc(env):
        yield Timeout(env, 1.0)

    env.process(proc(env))
    env.run()
    assert env._timeout_pool == []


def test_recycled_timeout_is_clean_on_reissue():
    env = Environment()

    def proc(env):
        first = env.timeout(1.0, value="first")
        yield first
        second = env.timeout(1.0, value="second")
        assert second._value == "second"
        assert second.callbacks == []  # no stale callbacks from first life
        got = yield second
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "second"


def test_pool_is_bounded():
    from repro.simcore import engine as engine_mod

    env = Environment()

    def sleeper(env):
        yield env.timeout(1.0)

    for _ in range(engine_mod._POOL_LIMIT + 200):
        env.process(sleeper(env))
    env.run()
    assert len(env._timeout_pool) <= engine_mod._POOL_LIMIT


# ---------------------------------------------------------------------------
# run(until=...) with pending callbacks
# ---------------------------------------------------------------------------


def test_run_until_time_with_pending_callbacks():
    env = Environment()
    fired = []
    env.call_later(1.0, fired.append, "early")
    env.call_later(5.0, fired.append, "on-time")
    env.call_later(9.0, fired.append, "late")
    env.run(until=5.0)
    # The URGENT stop event fires before the NORMAL callback at t=5.0.
    assert fired == ["early"]
    assert env.now == 5.0
    assert len(env) == 2  # both un-run callbacks still queued
    env.run()
    assert fired == ["early", "on-time", "late"]


def test_run_until_event_with_callbacks_in_flight():
    env = Environment()
    fired = []
    done = Event(env)
    env.call_later(2.0, fired.append, "a")
    env.call_later(4.0, lambda _: done.succeed("stop"), None)
    env.call_later(6.0, fired.append, "b")
    value = env.run(until=done)
    assert value == "stop"
    assert fired == ["a"]
    assert env.now == 4.0


def test_step_dispatches_callbacks():
    env = Environment()
    fired = []
    env.call_later(1.5, fired.append, "x")
    env.step()
    assert fired == ["x"]
    assert env.now == 1.5


# ---------------------------------------------------------------------------
# Determinism audit: fast path vs legacy produce identical digests
# ---------------------------------------------------------------------------

def _digest(trace):
    h = hashlib.sha256()
    for entry in trace:
        h.update(repr(entry).encode())
    return h.hexdigest()


def _scenario_legacy():
    """A pinned mini-scenario: 3 producers feeding a server, process-style.

    Each arrival is modelled with a raw Event (the pre-refactor idiom) and
    the server charges deterministic per-item service times.
    """
    env = Environment()
    trace = []
    avail = [0.0]

    def serve(item):
        start = max(env.now, avail[0])
        finish = start + 0.7
        avail[0] = finish
        done = Event(env)
        done._ok = True
        done._value = item
        done.callbacks.append(lambda ev: trace.append((env.now, "done", ev._value)))
        env.schedule(done, delay=finish - env.now)

    def producer(env, tag, period, count):
        for i in range(count):
            yield env.timeout(period)
            trace.append((env.now, "arrive", (tag, i)))
            serve((tag, i))

    env.process(producer(env, "a", 1.0, 10))
    env.process(producer(env, "b", 1.5, 8))
    env.process(producer(env, "c", 0.5, 14))
    env.run()
    return _digest(trace), env.now


def _scenario_fastpath():
    """The same scenario with arrivals and service on call_later."""
    env = Environment()
    trace = []
    avail = [0.0]

    def record_done(item):
        trace.append((env.now, "done", item))

    def serve(item):
        start = max(env.now, avail[0])
        finish = start + 0.7
        avail[0] = finish
        env.call_later(finish - env.now, record_done, item)

    def arrive(token):
        tag, i, period, count = token
        trace.append((env.now, "arrive", (tag, i)))
        serve((tag, i))
        if i + 1 < count:
            env.call_later(period, arrive, (tag, i + 1, period, count))

    env.call_later(1.0, arrive, ("a", 0, 1.0, 10))
    env.call_later(1.5, arrive, ("b", 0, 1.5, 8))
    env.call_later(0.5, arrive, ("c", 0, 0.5, 14))
    env.run()
    return _digest(trace), env.now


# The two implementations must agree with each other — and with this pinned
# digest, so an engine change that shifts either one fails loudly.
_PINNED_MINI_DIGEST = "c913fef59764ddfe67fed374993bf8b976cb9c5f31a0d945ea0b5d9af28b1f28"


def test_fastpath_and_legacy_scenarios_produce_identical_digests():
    legacy_digest, legacy_end = _scenario_legacy()
    fast_digest, fast_end = _scenario_fastpath()
    assert legacy_digest == fast_digest
    assert legacy_end == fast_end
    assert legacy_digest == _PINNED_MINI_DIGEST


def test_fastpath_scenario_replays_identically():
    assert _scenario_fastpath() == _scenario_fastpath()


# ---------------------------------------------------------------------------
# Batched dispatch: call_later_batch + the run-loop same-timestamp drain
# ---------------------------------------------------------------------------


def _scenario_fastpath_batched():
    """The fastpath mini-scenario with every call_later as a batch of one.

    ``call_later_batch`` reserves the same sequence numbers as the loop of
    ``call_later`` calls it replaces, so even batches of one must replay to
    the pinned digest bit-for-bit.
    """
    env = Environment()
    trace = []
    avail = [0.0]

    def record_done(item):
        trace.append((env.now, "done", item))

    def serve(item):
        start = max(env.now, avail[0])
        finish = start + 0.7
        avail[0] = finish
        env.call_later_batch(finish - env.now, record_done, [item])

    def arrive(token):
        tag, i, period, count = token
        trace.append((env.now, "arrive", (tag, i)))
        serve((tag, i))
        if i + 1 < count:
            env.call_later_batch(period, arrive, [(tag, i + 1, period, count)])

    env.call_later_batch(1.0, arrive, [("a", 0, 1.0, 10)])
    env.call_later_batch(1.5, arrive, [("b", 0, 1.5, 8)])
    env.call_later_batch(0.5, arrive, [("c", 0, 0.5, 14)])
    env.run()
    return _digest(trace), env.now


def test_batched_scenario_matches_pinned_digest():
    digest, end = _scenario_fastpath_batched()
    assert digest == _PINNED_MINI_DIGEST
    assert end == _scenario_fastpath()[1]


def _window_scenario(use_batch):
    """Window-completion shape: bursts of same-timestamp callbacks.

    Each tick completes a window of items at one timestamp, interleaved
    with independent per-item callbacks scheduled before and after the
    window — the layout where batch entries and the run-loop drain both
    engage.  Built identically with call_later_batch or a call_later loop.
    """
    env = Environment()
    trace = []

    def complete(item):
        trace.append((env.now, "complete", item))

    def side(tag):
        trace.append((env.now, "side", tag))

    def tick(round_no):
        if round_no >= 6:
            return
        window = [(round_no, k) for k in range(5)]
        env.call_later(2.0, side, ("pre", round_no))
        if use_batch:
            env.call_later_batch(2.0, complete, window)
        else:
            for item in window:
                env.call_later(2.0, complete, item)
        env.call_later(2.0, side, ("post", round_no))
        env.call_later(2.0, tick, round_no + 1)

    env.call_later(0.0, tick, 0)
    env.run()
    return _digest(trace), env.now


def test_call_later_batch_equals_call_later_loop():
    loop_digest, loop_end = _window_scenario(use_batch=False)
    batch_digest, batch_end = _window_scenario(use_batch=True)
    assert batch_digest == loop_digest
    assert batch_end == loop_end


def test_call_later_batch_is_one_heap_entry():
    env = Environment()
    env.call_later_batch(1.0, lambda _: None, ["a", "b", "c"])
    assert len(env) == 1  # the whole batch rides one heap entry
    assert env.peek() == 1.0


def test_call_later_batch_empty_is_noop_but_validates_delay():
    env = Environment()
    env.call_later_batch(1.0, lambda _: None, [])
    assert len(env) == 0
    with pytest.raises(SimulationError):
        env.call_later_batch(float("nan"), lambda _: None, [])
    with pytest.raises(SimulationError):
        env.call_later_batch(-1.0, lambda _: None, ["x"])


def test_batch_preempted_by_same_timestamp_urgent():
    """An URGENT entry scheduled *by* a batch member at the batch's own
    timestamp must run before the remaining members — exactly as it would
    between two call_later entries."""
    for use_batch in (False, True):
        env = Environment()
        order = []

        def member(tag, env=env, order=order):
            order.append(tag)
            if tag == "m0":
                env.call_later(0.0, order.append, "urgent", priority=URGENT)

        if use_batch:
            env.call_later_batch(1.0, member, ["m0", "m1", "m2"])
        else:
            for tag in ("m0", "m1", "m2"):
                env.call_later(1.0, member, tag)
        env.run()
        assert order == ["m0", "urgent", "m1", "m2"], use_batch


def test_batch_normal_scheduling_does_not_preempt():
    """Same-timestamp NORMAL entries scheduled mid-batch carry later seqs
    and must run after the batch completes."""
    env = Environment()
    order = []

    def member(tag):
        order.append(tag)
        if tag == "m0":
            env.call_later(0.0, order.append, "later")

    env.call_later_batch(1.0, member, ["m0", "m1"])
    env.run()
    assert order == ["m0", "m1", "later"]


def test_batch_exception_pushes_back_undispatched_tail():
    """A member that raises must leave the rest of the batch on the heap so
    a later run() resumes exactly where the first stopped."""
    env = Environment()
    ran = []

    def member(tag):
        if tag == "boom":
            raise RuntimeError("boom")
        ran.append(tag)

    env.call_later_batch(1.0, member, ["a", "boom", "b", "c"])
    with pytest.raises(RuntimeError):
        env.run()
    assert ran == ["a"]
    env.run()  # resumes with the pushed-back tail ("b", "c")
    assert ran == ["a", "b", "c"]


def test_run_until_mid_drain_preserves_pending_entries():
    """run(until=t) stopping inside a same-timestamp run must keep every
    undispatched entry queued for the next run()."""
    env = Environment()
    fired = []
    for tag in ("a", "b", "c", "d"):
        env.call_later(5.0, fired.append, tag)
    env.call_later(9.0, fired.append, "late")
    env.run(until=5.0)  # URGENT stop sorts before the NORMAL entries
    assert fired == []
    assert len(env) == 5
    env.run()
    assert fired == ["a", "b", "c", "d", "late"]


def test_drain_falls_back_on_earlier_sorting_entry():
    """A drained run must yield to an entry that sorts earlier than the
    next drained item (URGENT at the same timestamp, scheduled mid-run)."""
    env = Environment()
    order = []

    def first(_):
        order.append("first")
        env.call_later(0.0, order.append, "urgent", priority=URGENT)

    env.call_later(1.0, first, None)
    env.call_later(1.0, order.append, "second")
    env.call_later(1.0, order.append, "third")
    env.run()
    assert order == ["first", "urgent", "second", "third"]


def test_batch_args_sequence_is_owned_not_copied():
    """The engine takes ownership of the args sequence; a tuple works too."""
    env = Environment()
    seen = []
    env.call_later_batch(1.0, seen.append, ("x", "y"))
    env.run()
    assert seen == ["x", "y"]


# ---------------------------------------------------------------------------
# Tracer lazy payloads (satellite: no payload construction when disabled)
# ---------------------------------------------------------------------------


def test_tracer_lazy_payload_not_built_when_disabled():
    from repro.simcore.trace import Tracer

    calls = []

    def thunk():
        calls.append(1)
        return {"expensive": True}

    t = Tracer(enabled=False)
    t.emit(0.0, "src", "kind", thunk)
    assert calls == []  # never invoked
    assert t.records == []

    t = Tracer(enabled=True)
    t.emit(1.0, "src", "kind", thunk)
    assert calls == [1]
    assert t.records[0].payload == {"expensive": True}


def test_tracer_lazy_payload_not_built_past_limit():
    from repro.simcore.trace import Tracer

    calls = []
    t = Tracer(enabled=True, limit=1)
    t.emit(0.0, "s", "k", lambda: calls.append(1) or "p1")
    t.emit(1.0, "s", "k", lambda: calls.append(2) or "p2")
    assert len(t.records) == 1
    assert calls == [1]
