"""Coverage for ``simcore/monitor.py`` and ``simcore/trace.py``.

Pins the contracts the hot paths rely on: the Tracer's enabled/disabled
pre-check and exactly-once lazy-thunk evaluation (single and batched), the
per-record limit across ``emit``/``emit_many``, sink fan-out ordering, and
the Sampler's cadence/stop/aggregation behaviour.
"""

import pytest

from repro.simcore import Environment
from repro.simcore.monitor import Sampler
from repro.simcore.trace import NULL_TRACER, TraceRecord, Tracer


# ---------------------------------------------------------------------------
# Tracer: enabled/disabled pre-check
# ---------------------------------------------------------------------------


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.emit(0.0, "s", "k", "payload")
    t.emit_many(0.0, "s", "k", ["p1", "p2"])
    assert t.records == []


def test_null_tracer_is_disabled():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.emit(0.0, "s", "k", "x")
    assert NULL_TRACER.records == []


def test_enabled_tracer_records_in_order():
    t = Tracer(enabled=True)
    t.emit(1.0, "src", "a", 1)
    t.emit(2.0, "src", "b", 2)
    assert [(r.time, r.kind, r.payload) for r in t.records] == [
        (1.0, "a", 1),
        (2.0, "b", 2),
    ]


def test_emit_respects_limit():
    t = Tracer(enabled=True, limit=2)
    for i in range(5):
        t.emit(float(i), "s", "k", i)
    assert [r.payload for r in t.records] == [0, 1]


# ---------------------------------------------------------------------------
# Tracer: lazy-thunk payloads evaluate exactly once, only when kept
# ---------------------------------------------------------------------------


def test_lazy_thunk_evaluates_exactly_once_when_kept():
    calls = []

    def thunk():
        calls.append(1)
        return "built"

    t = Tracer(enabled=True)
    t.emit(0.0, "s", "k", thunk)
    assert calls == [1]
    assert t.records[0].payload == "built"


def test_lazy_thunk_not_evaluated_when_disabled_or_past_limit():
    calls = []
    t = Tracer(enabled=False)
    t.emit(0.0, "s", "k", lambda: calls.append("off"))
    t = Tracer(enabled=True, limit=1)
    t.emit(0.0, "s", "k", lambda: calls.append("kept") or "p")
    t.emit(1.0, "s", "k", lambda: calls.append("dropped"))
    assert calls == ["kept"]


# ---------------------------------------------------------------------------
# Tracer: batched emit_many
# ---------------------------------------------------------------------------


def test_emit_many_equals_emit_loop():
    loop = Tracer(enabled=True)
    for p in ("a", "b", "c"):
        loop.emit(3.0, "src", "kind", p)
    batched = Tracer(enabled=True)
    batched.emit_many(3.0, "src", "kind", ["a", "b", "c"])
    assert batched.records == loop.records


def test_emit_many_lazy_thunks_exactly_once_in_order():
    calls = []

    def make(tag):
        def thunk():
            calls.append(tag)
            return tag

        return thunk

    t = Tracer(enabled=True)
    t.emit_many(0.0, "s", "k", [make("p0"), make("p1"), make("p2")])
    assert calls == ["p0", "p1", "p2"]
    assert [r.payload for r in t.records] == ["p0", "p1", "p2"]


def test_emit_many_stops_at_limit_mid_batch_without_evaluating_rest():
    calls = []

    def make(tag):
        def thunk():
            calls.append(tag)
            return tag

        return thunk

    t = Tracer(enabled=True, limit=2)
    t.emit_many(0.0, "s", "k", [make("a"), make("b"), make("c"), make("d")])
    assert [r.payload for r in t.records] == ["a", "b"]
    assert calls == ["a", "b"]  # thunks past the limit never ran


def test_emit_many_empty_batch_is_noop():
    t = Tracer(enabled=True)
    t.emit_many(0.0, "s", "k", [])
    assert t.records == []


def test_emit_many_feeds_sinks_per_record_in_order():
    seen = []
    t = Tracer(enabled=True)
    t.add_sink(lambda r: seen.append(("s1", r.payload)))
    t.add_sink(lambda r: seen.append(("s2", r.payload)))
    t.emit_many(0.0, "s", "k", ["x", "y"])
    assert seen == [("s1", "x"), ("s2", "x"), ("s1", "y"), ("s2", "y")]


# ---------------------------------------------------------------------------
# Tracer: filtering, counting, clearing
# ---------------------------------------------------------------------------


def test_filter_and_count_by_source_and_kind():
    t = Tracer(enabled=True)
    t.emit(0.0, "link", "drop", 1)
    t.emit(1.0, "link", "send", 2)
    t.emit(2.0, "nic", "drop", 3)
    assert [r.payload for r in t.filter(source="link")] == [1, 2]
    assert [r.payload for r in t.filter(kind="drop")] == [1, 3]
    assert [r.payload for r in t.filter(source="link", kind="drop")] == [1]
    assert t.count(kind="drop") == 2
    assert t.count() == 3
    t.clear()
    assert t.records == [] and t.count() == 0


def test_trace_record_is_frozen():
    r = TraceRecord(1.0, "s", "k", "p")
    with pytest.raises(AttributeError):
        r.time = 2.0


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------


def test_sampler_rejects_nonpositive_interval():
    env = Environment()
    with pytest.raises(ValueError):
        Sampler(env, lambda: 0, interval=0.0)
    with pytest.raises(ValueError):
        Sampler(env, lambda: 0, interval=-1.0)


def test_sampler_records_probe_at_fixed_cadence():
    env = Environment()
    clock = []
    s = Sampler(env, lambda: len(clock), interval=10.0, name="probe")
    env.call_later(5.0, lambda _: clock.append(1), None)
    env.call_later(15.0, lambda _: clock.append(1), None)
    env.run(until=35.0)
    assert s.times == [0.0, 10.0, 20.0, 30.0]
    assert s.values == [0, 1, 2, 2]


def test_sampler_stop_is_idempotent_and_halts_sampling():
    env = Environment()
    s = Sampler(env, lambda: 1, interval=1.0)
    env.run(until=3.5)
    assert len(s.samples) == 4  # t=0,1,2,3
    s.stop()
    s.stop()  # safe to call twice
    env.run(until=10.0)
    assert len(s.samples) == 4  # no further samples after stop


def test_sampler_mean_over_numeric_samples():
    env = Environment()
    values = iter([1.0, 2.0, 3.0, 4.0])
    s = Sampler(env, lambda: next(values), interval=1.0)
    env.run(until=3.5)
    assert s.mean() == pytest.approx(2.5)


def test_sampler_mean_empty_is_zero():
    env = Environment()
    s = Sampler(env, lambda: 1.0, interval=1.0)
    assert s.mean() == 0.0  # nothing sampled before the run starts
