"""Tests for Store / PriorityStore / Resource / Container."""

import pytest

from repro.errors import SimulationError
from repro.simcore import (
    Container,
    Environment,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)


# ---------------------------------------------------------------- Store ----
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for i in range(5):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(9.0)
        yield store.put("late")

    p = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert p.value == (9.0, "late")


def test_store_put_blocks_at_capacity():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a", 0.0), ("b", 5.0)]


def test_store_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_many_consumers_fifo_service():
    env = Environment()
    store = Store(env)
    served = []

    def consumer(env, tag):
        yield store.get()
        served.append(tag)

    def producer(env):
        yield env.timeout(1.0)
        for _ in range(3):
            yield store.put(object())

    for tag in "abc":
        env.process(consumer(env, tag))
    env.process(producer(env))
    env.run()
    assert served == ["a", "b", "c"]


def test_store_len():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put(1)
        yield store.put(2)

    env.process(proc(env))
    env.run()
    assert len(store) == 2


# -------------------------------------------------------- PriorityStore ----
def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    out = []

    def producer(env):
        yield store.put(PriorityItem(5, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(3, "mid"))

    def consumer(env):
        yield env.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            out.append(item.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == ["high", "mid", "low"]


def test_priority_item_fifo_within_class():
    a = PriorityItem(1, "first")
    b = PriorityItem(1, "second")
    assert a < b


# ------------------------------------------------------------- Resource ----
def test_resource_limits_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(env, tag):
        with res.request() as req:
            yield req
            active.append(tag)
            peak.append(len(active))
            yield env.timeout(10.0)
            active.remove(tag)

    for tag in range(5):
        env.process(worker(env, tag))
    env.run()
    assert max(peak) == 2


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1.0)

    for tag in range(4):
        env.process(worker(env, tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_release_on_context_exit():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(worker(env))
    env.run()
    assert res.count == 0
    assert res.queued == 0


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    snapshots = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)
            snapshots.append((res.count, res.queued))

    def waiter(env):
        yield env.timeout(1.0)
        with res.request() as req:
            yield req

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert snapshots == [(1, 1)]


# ------------------------------------------------------------ Container ----
def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100.0, init=50.0)

    def proc(env):
        yield tank.get(30.0)
        assert tank.level == 20.0
        yield tank.put(70.0)
        assert tank.level == 90.0

    env.process(proc(env))
    env.run()
    assert tank.level == 90.0


def test_container_get_blocks_until_enough():
    env = Environment()
    tank = Container(env, capacity=100.0, init=0.0)

    def consumer(env):
        yield tank.get(10.0)
        return env.now

    def producer(env):
        for _ in range(10):
            yield env.timeout(1.0)
            yield tank.put(1.0)

    p = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert p.value == 10.0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)

    def producer(env):
        yield tank.put(5.0)
        return env.now

    def consumer(env):
        yield env.timeout(3.0)
        yield tank.get(5.0)

    p = env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert p.value == 3.0


def test_container_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=0.0)
    with pytest.raises(SimulationError):
        Container(env, capacity=10.0, init=11.0)
    tank = Container(env, capacity=10.0)
    with pytest.raises(SimulationError):
        tank.put(0.0)
    with pytest.raises(SimulationError):
        tank.get(-1.0)


def test_interrupted_waiter_releases_resource_slot():
    """A process interrupted while waiting must not leak its queue slot."""
    from repro.simcore import Interrupt

    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)
            order.append("holder-done")

    def victim(env):
        try:
            with res.request() as req:
                yield req
                order.append("victim-ran")  # pragma: no cover - must not run
        except Interrupt:
            order.append("victim-interrupted")

    def third(env):
        yield env.timeout(2.0)
        with res.request() as req:
            yield req
            order.append("third-ran")

    env.process(holder(env))
    v = env.process(victim(env))
    env.process(third(env))

    def interrupter(env):
        yield env.timeout(1.0)
        v.interrupt()

    env.process(interrupter(env))
    env.run()
    assert "victim-interrupted" in order
    assert "third-ran" in order  # the slot was not leaked
    assert res.count == 0


def test_store_get_cancel():
    env = Environment()
    store = Store(env)
    get_event = store.get()
    assert get_event.cancel() is True  # still pending -> withdrawn

    def producer(env):
        yield store.put("item")

    def consumer(env):
        item = yield store.get()
        return item

    env.process(producer(env))
    p = env.process(consumer(env))
    env.run()
    # The cancelled get did not consume the item: the consumer got it.
    assert p.value == "item"
    assert not get_event.triggered
    assert get_event.cancel() is True  # idempotent on withdrawn events
