"""Pinned stream-equivalence for the array-RNG service-time path.

The SSD controller draws service times through
:class:`repro.simcore.rng.NormalBuffer`, which prefetches arrays of standard
normals and exponentiates per draw.  These tests pin the contract the golden
digests depend on: the buffered draw sequence is **bit-identical** to the
scalar ``Generator.lognormal`` sequence from the same seed — across refill
boundaries, interleaved read/write means, cv=0 no-draw branches, and the
device-level wiring.
"""

import numpy as np
import pytest

from repro.simcore import Environment
from repro.simcore.rng import NormalBuffer, RandomStreams, lognormal_with_mean
from repro.ssd.device import NvmeSsd
from repro.ssd.latency import (
    CLOUDLAB_SSD,
    OP_FLUSH,
    OP_READ,
    OP_WRITE,
    SsdProfile,
)


# ---------------------------------------------------------------------------
# NormalBuffer vs scalar generator: bit-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 7, 12345])
@pytest.mark.parametrize("batch", [1, 2, 5, 64])
def test_buffered_lognormal_bit_identical_to_scalar(seed, batch):
    """Small batches force many refills — the equivalence must hold across
    every refill boundary, not just inside one prefetched array."""
    scalar = np.random.default_rng(seed)
    buffered = NormalBuffer(np.random.default_rng(seed), batch=batch)
    for i in range(257):
        mu, sigma = (3.2, 0.25) if i % 2 else (1.1, 0.5)
        assert float(scalar.lognormal(mu, sigma)) == float(buffered.lognormal(mu, sigma))


def test_buffered_standard_normal_bit_identical_to_scalar():
    scalar = np.random.default_rng(42)
    buffered = NormalBuffer(np.random.default_rng(42), batch=3)
    for _ in range(20):
        assert float(scalar.standard_normal()) == float(buffered.standard_normal())


def test_lognormal_with_mean_polymorphic_over_buffer():
    """The shared helper draws identically through either rng flavour,
    including the cv=0 branch that must consume no randomness."""
    scalar = np.random.default_rng(9)
    buffered = NormalBuffer(np.random.default_rng(9), batch=4)
    for i in range(50):
        mean, cv = (25.0, 0.25) if i % 3 else (25.5, 0.35)
        assert float(lognormal_with_mean(scalar, mean, cv)) == float(
            lognormal_with_mean(buffered, mean, cv)
        )
        if i % 7 == 0:
            # cv=0 short-circuits before any draw on both paths.
            assert lognormal_with_mean(scalar, 10.0, 0.0) == 10.0
            assert lognormal_with_mean(buffered, 10.0, 0.0) == 10.0


def test_buffered_lognormal_size_path_matches_scalar_loop():
    scalar = np.random.default_rng(3)
    buffered = NormalBuffer(np.random.default_rng(3), batch=4)
    expected = [float(scalar.lognormal(2.0, 0.3)) for _ in range(10)]
    got = buffered.lognormal(2.0, 0.3, size=10)
    assert [float(x) for x in got] == expected


def test_buffer_rejects_nonpositive_batch():
    with pytest.raises(ValueError):
        NormalBuffer(np.random.default_rng(0), batch=0)


# ---------------------------------------------------------------------------
# Profile-level equivalence: service_time through buffer == through scalar
# ---------------------------------------------------------------------------


def test_service_time_sequence_identical_through_buffer():
    """Interleaved read/write/flush draws on one stream — the exact shape of
    the controller's per-command sampling."""
    profile = CLOUDLAB_SSD
    scalar = np.random.default_rng(11)
    buffered = NormalBuffer(np.random.default_rng(11), batch=7)
    ops = [OP_READ, OP_WRITE, OP_READ, OP_FLUSH, OP_WRITE, OP_READ, OP_FLUSH]
    for i in range(120):
        op = ops[i % len(ops)]
        nbytes = 4096 * (1 + i % 4)
        assert profile.service_time(scalar, op, nbytes) == profile.service_time(
            buffered, op, nbytes
        )


def test_flush_consumes_no_draws_through_buffer():
    profile = SsdProfile()
    buffered = NormalBuffer(np.random.default_rng(5), batch=8)
    before = (buffered._pos, buffered._n)
    assert profile.service_time(buffered, OP_FLUSH, 0) == profile.flush_us
    assert (buffered._pos, buffered._n) == before


# ---------------------------------------------------------------------------
# Device-level equivalence: a controller run draws the same sequence
# ---------------------------------------------------------------------------


def _run_device(seed, n_cmds):
    env = Environment()
    ssd = NvmeSsd(env, streams=RandomStreams(seed), name="nvme0")
    qp = ssd.create_qpair(depth=256)
    completions = []
    qp.on_completion = lambda c: completions.append(
        (c.cid, c.status, c.completed_at)
    )
    for i in range(n_cmds):
        op = OP_WRITE if i % 3 == 0 else OP_READ
        qp.submit(op, nsid=1, slba=i * 8, nlb=1 + i % 4)
    env.run()
    return completions


def test_device_run_with_buffer_matches_manual_scalar_sequence():
    """Completion times of a controller run must equal the per-command
    scalar draw sequence replayed by hand from the same named stream."""
    profile = NvmeSsd(Environment(), streams=RandomStreams(0)).profile
    n = profile.channels  # all start at t=0, one per channel
    completions = _run_device(21, n)
    assert len(completions) == n

    # Replay the draws with a scalar generator: commands execute in
    # submission order (single qpair, synchronous doorbell), so draw i
    # belongs to cid i, and with a free channel each command completes at
    # exactly its drawn service time.
    rng = RandomStreams(21).stream("ssd/nvme0")
    draws = []
    for i in range(n):
        op = OP_WRITE if i % 3 == 0 else OP_READ
        nbytes = (1 + i % 4) * profile.block_size
        draws.append(profile.service_time(rng, op, nbytes))
    by_cid = {cid: completed_at for cid, _status, completed_at in completions}
    assert by_cid == {i: draws[i] for i in range(n)}


def test_device_digest_stable_across_runs():
    assert _run_device(21, 40) == _run_device(21, 40)
