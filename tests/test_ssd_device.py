"""Tests for the NVMe SSD substrate: rings, controller, device, FTL."""

import pytest

from repro.errors import ConfigError, DeviceError, QueueEmptyError, QueueFullError
from repro.simcore import Environment, RandomStreams
from repro.ssd import (
    CompletionQueue,
    DeviceErrorInjector,
    FtlConfig,
    NvmeCommand,
    NvmeSsd,
    OP_READ,
    OP_WRITE,
    STATUS_LBA_OUT_OF_RANGE,
    SsdProfile,
    SubmissionQueue,
)
from repro.ssd.ftl import Ftl


def make_ssd(env, **profile_kwargs):
    defaults = dict(name="test-ssd", channels=4, read_mean_us=10.0, write_mean_us=15.0)
    defaults.update(profile_kwargs)
    return NvmeSsd(env, profile=SsdProfile(**defaults), streams=RandomStreams(7))


# ---------------------------------------------------------------- rings ----
def test_sq_fifo_and_capacity():
    env = Environment()
    sq = SubmissionQueue(env, depth=4)
    for i in range(3):  # depth 4 ring holds 3 entries
        sq.submit(NvmeCommand(cid=i, opcode=OP_READ))
    assert sq.is_full
    with pytest.raises(QueueFullError):
        sq.submit(NvmeCommand(cid=9, opcode=OP_READ))
    assert [sq.pop().cid for _ in range(3)] == [0, 1, 2]
    assert sq.is_empty
    with pytest.raises(QueueEmptyError):
        sq.pop()


def test_sq_wraps_around():
    env = Environment()
    sq = SubmissionQueue(env, depth=4)
    for round_ in range(5):
        for i in range(3):
            sq.submit(NvmeCommand(cid=round_ * 3 + i, opcode=OP_READ))
        got = [sq.pop().cid for _ in range(3)]
        assert got == [round_ * 3, round_ * 3 + 1, round_ * 3 + 2]


def test_cq_post_and_reap():
    env = Environment()
    from repro.ssd.queues import NvmeCompletion

    cq = CompletionQueue(env, depth=4)
    cmd = NvmeCommand(cid=5, opcode=OP_READ)
    cq.post(NvmeCompletion(5, 0, 1.0, cmd))
    got = cq.reap()
    assert got.cid == 5 and got.ok


def test_queue_depth_validation():
    env = Environment()
    with pytest.raises(ConfigError):
        SubmissionQueue(env, depth=1)
    with pytest.raises(ConfigError):
        CompletionQueue(env, depth=0)


def test_command_validation():
    with pytest.raises(ConfigError):
        NvmeCommand(cid=1, opcode="trim")
    with pytest.raises(ConfigError):
        NvmeCommand(cid=70000, opcode=OP_READ)
    with pytest.raises(ConfigError):
        NvmeCommand(cid=1, opcode=OP_READ, nlb=0)


# ----------------------------------------------------------- controller ----
def test_commands_complete_with_callbacks():
    env = Environment()
    ssd = make_ssd(env)
    qp = ssd.create_qpair(depth=64)
    done = []
    qp.on_completion = lambda c: done.append((c.cid, env.now))
    qp.read(1, slba=0, nlb=1)
    qp.read(1, slba=8, nlb=1)
    env.run()
    assert len(done) == 2
    assert all(t > 0 for _, t in done)
    assert qp.outstanding == 0


def test_channel_parallelism_bounds_concurrency():
    env = Environment()
    # Deterministic service (cv=0): 4 channels, 8 reads of 10us each
    # -> makespan 20us, not 80us.
    ssd = make_ssd(env, read_cv=0.0)
    qp = ssd.create_qpair()
    done = []
    qp.on_completion = lambda c: done.append(env.now)
    for i in range(8):
        qp.read(1, slba=i, nlb=1)
    env.run()
    assert len(done) == 8
    assert max(done) == pytest.approx(20.0)


def test_completions_can_arrive_out_of_order():
    env = Environment()
    ssd = make_ssd(env, read_cv=0.8)  # high variance to force reordering
    qp = ssd.create_qpair()
    order = []
    qp.on_completion = lambda c: order.append(c.cid)
    for i in range(64):
        qp.read(1, slba=i, nlb=1)
    env.run()
    assert sorted(order) == list(range(64))
    assert order != list(range(64))  # genuinely out of order


def test_writes_slower_than_reads_on_average():
    env = Environment()
    ssd = make_ssd(env, read_cv=0.0, write_cv=0.0)
    qp = ssd.create_qpair()
    times = {}
    qp.on_completion = lambda c: times.setdefault(c.command.opcode, env.now)
    qp.read(1, slba=0, nlb=1)
    env.run()
    read_time = times[OP_READ]
    env2 = Environment()
    ssd2 = make_ssd(env2, read_cv=0.0, write_cv=0.0)
    qp2 = ssd2.create_qpair()
    times2 = {}
    qp2.on_completion = lambda c: times2.setdefault(c.command.opcode, env2.now)
    qp2.write(1, slba=0, nlb=1)
    env2.run()
    assert times2[OP_WRITE] > read_time


def test_large_commands_take_longer():
    env = Environment()
    ssd = make_ssd(env, read_cv=0.0, extra_block_us=5.0)
    qp = ssd.create_qpair()
    done = {}
    qp.on_completion = lambda c: done.setdefault(c.cid, env.now)
    small = qp.read(1, slba=0, nlb=1)
    env.run()
    t_small = done[small.cid]
    env2 = Environment()
    ssd2 = make_ssd(env2, read_cv=0.0, extra_block_us=5.0)
    qp2 = ssd2.create_qpair()
    done2 = {}
    qp2.on_completion = lambda c: done2.setdefault(c.cid, env2.now)
    big = qp2.read(1, slba=0, nlb=8)
    env2.run()
    assert done2[big.cid] == pytest.approx(t_small + 7 * 5.0)


def test_round_robin_across_qpairs():
    env = Environment()
    ssd = make_ssd(env, channels=1, read_cv=0.0)
    qp1 = ssd.create_qpair()
    qp2 = ssd.create_qpair()
    order = []
    qp1.on_completion = lambda c: order.append(("q1", c.cid))
    qp2.on_completion = lambda c: order.append(("q2", c.cid))

    def submit_all(env):
        # Submit while channel 0 is busy so arbitration sees both SQs loaded.
        qp1.read(1, slba=0, nlb=1)
        qp1.read(1, slba=1, nlb=1)
        qp2.read(1, slba=2, nlb=1)
        qp2.read(1, slba=3, nlb=1)
        yield env.timeout(0.0)

    env.process(submit_all(env))
    env.run()
    # With single-channel serialization the controller should interleave.
    assert order[0][0] != order[1][0] or order[1][0] != order[2][0]
    assert len(order) == 4


def test_out_of_range_lba_rejected_at_submit():
    env = Environment()
    ssd = make_ssd(env, capacity_bytes=4096 * 100)
    qp = ssd.create_qpair()
    with pytest.raises(DeviceError):
        qp.read(1, slba=99, nlb=2)
    with pytest.raises(DeviceError):
        qp.read(1, slba=-1, nlb=1)


def test_unknown_namespace_rejected():
    env = Environment()
    ssd = make_ssd(env)
    qp = ssd.create_qpair()
    with pytest.raises(DeviceError):
        qp.read(7, slba=0, nlb=1)


def test_add_namespace():
    env = Environment()
    ssd = make_ssd(env)
    ssd.add_namespace(2, blocks=1000)
    qp = ssd.create_qpair()
    done = []
    qp.on_completion = lambda c: done.append(c)
    qp.read(2, slba=999, nlb=1)
    env.run()
    assert done[0].ok
    with pytest.raises(DeviceError):
        ssd.add_namespace(2, blocks=10)


def test_error_injection_reports_failed_status():
    env = Environment()
    ssd = make_ssd(env)
    qp = ssd.create_qpair()
    DeviceErrorInjector(ssd.controller, fail_every=2)
    statuses = []
    qp.on_completion = lambda c: statuses.append(c.status)
    for i in range(4):
        qp.read(1, slba=i, nlb=1)
    env.run()
    assert statuses.count(STATUS_LBA_OUT_OF_RANGE) == 2
    assert ssd.controller.commands_failed == 2


def test_iops_ceiling_matches_profile():
    profile = SsdProfile(channels=8, read_mean_us=20.0, write_mean_us=25.0)
    assert profile.read_iops_ceiling() == pytest.approx(400_000)
    assert profile.write_iops_ceiling() == pytest.approx(320_000)


def test_device_sustains_near_ceiling_throughput():
    env = Environment()
    ssd = make_ssd(env, channels=4, read_mean_us=10.0, read_cv=0.2)
    qp = ssd.create_qpair()
    n_total = 2000
    state = {"submitted": 0, "done": 0}

    def refill(c):
        state["done"] += 1
        if state["submitted"] < n_total:
            qp.read(1, slba=state["submitted"] % 100, nlb=1)
            state["submitted"] += 1

    qp.on_completion = refill
    for _ in range(32):
        qp.read(1, slba=0, nlb=1)
        state["submitted"] += 1
    env.run()
    measured_iops = state["done"] / env.now * 1e6
    ceiling = ssd.profile.read_iops_ceiling()
    assert measured_iops > 0.9 * ceiling


# ------------------------------------------------------------------- FTL ----
def test_ftl_no_penalty_under_buffer():
    env = Environment()
    ftl = Ftl(env, FtlConfig(buffer_bytes=1024 * 1024, drain_bytes_per_us=100.0))
    assert ftl.write_penalty(4096, service_us=10.0) == 0.0


def test_ftl_penalty_on_overflow():
    env = Environment()
    ftl = Ftl(env, FtlConfig(buffer_bytes=8192, drain_bytes_per_us=1.0))
    assert ftl.write_penalty(8192, 1.0) == 0.0  # fills buffer exactly
    penalty = ftl.write_penalty(4096, 1.0)  # 4096 bytes over -> stall
    assert penalty == pytest.approx(4096.0)


def test_ftl_drains_over_time():
    env = Environment()
    ftl = Ftl(env, FtlConfig(buffer_bytes=8192, drain_bytes_per_us=10.0))
    ftl.write_penalty(8192, 1.0)

    def later(env):
        yield env.timeout(500.0)  # 5000 bytes drained
        assert ftl.buffer_level == pytest.approx(8192 - 5000)
        # 3192 + 4096 = 7288 fits under the 8192 cap: no stall.
        assert ftl.write_penalty(4096, 1.0) == 0.0
        # A further 4096 overflows by 7288 + 4096 - 8192 = 3192 bytes.
        assert ftl.write_penalty(4096, 1.0) == pytest.approx(3192 / 10.0)

    env.process(later(env))
    env.run()


def test_ftl_gc_pauses_fire():
    env = Environment()
    cfg = FtlConfig(gc_enabled=True, gc_interval_us=100.0, gc_pause_us=50.0)
    ftl = Ftl(env, cfg)  # no rng -> deterministic interval
    total = 0.0
    for _ in range(10):
        total += ftl.write_penalty(4096, service_us=50.0)
    assert ftl.gc_pauses == 5
    assert total == pytest.approx(5 * 50.0)


def test_ftl_config_validation():
    with pytest.raises(ConfigError):
        FtlConfig(buffer_bytes=0)
    with pytest.raises(ConfigError):
        FtlConfig(drain_bytes_per_us=0)
    with pytest.raises(ConfigError):
        FtlConfig(gc_interval_us=-1)
