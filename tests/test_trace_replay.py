"""Tests for trace synthesis, (de)serialisation, and open-loop replay."""

import pytest

from repro.cluster.node import InitiatorNode, TargetNode
from repro.core.flags import Priority
from repro.errors import WorkloadError
from repro.net import Fabric
from repro.simcore import Environment, RandomStreams
from repro.workloads import (
    TraceRecordEntry,
    TraceReplayer,
    load_trace,
    save_trace,
    synthesize_trace,
)


def make_rig(protocol="nvme-opf", queue_depth=64):
    env = Environment()
    fabric = Fabric(env, rate_gbps=100)
    tnode = TargetNode(env, "t0", fabric, RandomStreams(31), protocol=protocol)
    inode = InitiatorNode(env, "c0", fabric)
    initiator = inode.add_initiator(
        "replay", tnode, protocol=protocol, queue_depth=queue_depth, window_size=16
    )
    env.run(until=initiator.connect())
    return env, initiator


# ------------------------------------------------------------- synthesis ----
def test_synthesize_trace_profile():
    rng = RandomStreams(1).stream("trace")
    trace = synthesize_trace(rng, duration_us=50_000, iops=20_000,
                             read_fraction=0.7, latency_fraction=0.1)
    assert len(trace) > 500
    times = [e.time_us for e in trace]
    assert times == sorted(times)
    reads = sum(e.op == "read" for e in trace) / len(trace)
    assert 0.6 < reads < 0.8
    ls = sum(e.priority is Priority.LATENCY for e in trace) / len(trace)
    assert 0.05 < ls < 0.16


def test_synthesize_validation():
    rng = RandomStreams(1).stream("t")
    with pytest.raises(WorkloadError):
        synthesize_trace(rng, duration_us=0, iops=100)
    with pytest.raises(WorkloadError):
        synthesize_trace(rng, duration_us=100, iops=100, read_fraction=2.0)


# --------------------------------------------------------------- file I/O ----
def test_save_and_load_roundtrip(tmp_path):
    rng = RandomStreams(2).stream("trace")
    trace = synthesize_trace(rng, duration_us=5_000, iops=10_000)
    path = save_trace(tmp_path / "t.csv", trace)
    back = load_trace(path)
    assert back == trace


def test_load_trace_validation(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("nope\n1\n")
    with pytest.raises(WorkloadError):
        load_trace(bad)
    empty = tmp_path / "empty.csv"
    empty.write_text("time_us,op,slba,nlb\n")
    with pytest.raises(WorkloadError):
        load_trace(empty)
    unordered = tmp_path / "unordered.csv"
    unordered.write_text("time_us,op,slba,nlb\n5,read,0,1\n1,read,0,1\n")
    with pytest.raises(WorkloadError):
        load_trace(unordered)
    badrow = tmp_path / "badrow.csv"
    badrow.write_text("time_us,op,slba,nlb\nxx,read,0,1\n")
    with pytest.raises(WorkloadError):
        load_trace(badrow)


def test_trace_entry_validation():
    with pytest.raises(WorkloadError):
        TraceRecordEntry(time_us=-1, op="read", slba=0, nlb=1)
    with pytest.raises(WorkloadError):
        TraceRecordEntry(time_us=0, op="trim", slba=0, nlb=1)
    with pytest.raises(WorkloadError):
        TraceRecordEntry(time_us=0, op="read", slba=0, nlb=0)


# ----------------------------------------------------------------- replay ----
def test_replay_respects_timestamps():
    env, initiator = make_rig()
    trace = [
        TraceRecordEntry(0.0, "read", 0, 1),
        TraceRecordEntry(500.0, "read", 8, 1),
        TraceRecordEntry(1_000.0, "write", 16, 1),
    ]
    replayer = TraceReplayer(env, initiator, trace)
    env.run(until=replayer.done)
    assert replayer.issued == 3
    assert replayer.dropped == 0
    # The last request could not have been submitted before its timestamp.
    assert replayer.requests[-1].submitted_at >= 1_000.0
    assert all(r.done for r in replayer.requests)


def test_replay_open_loop_drops_on_overload():
    """Offered load far beyond the queue depth must shed, not stall."""
    env, initiator = make_rig(queue_depth=4)
    trace = [TraceRecordEntry(float(i) * 0.01, "read", i, 1) for i in range(300)]
    replayer = TraceReplayer(env, initiator, trace)
    env.run(until=replayer.done)
    assert replayer.dropped > 0
    assert replayer.issued + replayer.dropped == 300
    assert all(r.done for r in replayer.requests)


def test_replay_mixed_priorities_end_to_end():
    env, initiator = make_rig()
    rng = RandomStreams(3).stream("trace")
    trace = synthesize_trace(rng, duration_us=3_000, iops=50_000,
                             latency_fraction=0.2)
    replayer = TraceReplayer(env, initiator, trace)
    env.run(until=replayer.done)
    env.run()
    ls = replayer.latencies(Priority.LATENCY)
    tc = replayer.latencies(Priority.THROUGHPUT)
    assert ls and tc
    # Open-loop LS requests should see lower latency than coalesced TC.
    import numpy as np

    assert np.mean(ls) < np.mean(tc)


def test_replay_validation():
    env, initiator = make_rig()
    with pytest.raises(WorkloadError):
        TraceReplayer(env, initiator, [])


# --------------------------------------------------------- CDF reporting ----
def test_cdf_points_and_histogram():
    from repro.metrics import LatencyDistribution

    dist = LatencyDistribution()
    dist.extend(float(x) for x in range(1, 101))
    points = dist.cdf_points(n_points=5)
    assert points[0][1] == 0.0 and points[-1][1] == 1.0
    values = [v for v, _f in points]
    assert values == sorted(values)
    assert points[-1][0] == 100.0
    text = dist.histogram_ascii(bins=5)
    assert text.count("\n") == 4
    assert "#" in text
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        LatencyDistribution().cdf_points()
    with pytest.raises(ConfigError):
        dist.cdf_points(n_points=1)
