"""Tests for workload generators: patterns, mixes, perf, h5bench config."""

import pytest

from repro.core import Priority
from repro.errors import WorkloadError
from repro.simcore import RandomStreams
from repro.workloads import (
    AddressPattern,
    PAPER_RATIOS,
    PerfConfig,
    TenantSpec,
    parse_ratio,
    tenants_for_ratio,
)
from repro.workloads.h5bench import H5BenchConfig, aggregate_bandwidth_mbps, H5BenchRankResult


# ---------------------------------------------------------------- patterns ----
def test_sequential_pattern_advances_and_wraps():
    pattern = AddressPattern("seq", total_blocks=10, blocks_per_io=3)
    slbas = [pattern.next_slba() for _ in range(5)]
    # 0, 3, 6 fit; the next I/O would overrun, so the cursor wraps to 0.
    assert slbas == [0, 3, 6, 0, 3]
    assert all(s + 3 <= 10 for s in slbas)


def test_sequential_pattern_single_block():
    pattern = AddressPattern("seq", total_blocks=4, blocks_per_io=1)
    assert [pattern.next_slba() for _ in range(6)] == [0, 1, 2, 3, 0, 1]


def test_random_pattern_aligned_and_in_range():
    rng = RandomStreams(1).stream("t")
    pattern = AddressPattern("rand", total_blocks=100, blocks_per_io=4, rng=rng)
    for _ in range(200):
        slba = pattern.next_slba()
        assert 0 <= slba <= 96
        assert slba % 4 == 0


def test_random_pattern_requires_rng():
    with pytest.raises(WorkloadError):
        AddressPattern("rand", total_blocks=100)


def test_pattern_validation():
    with pytest.raises(WorkloadError):
        AddressPattern("zipf", total_blocks=10)
    with pytest.raises(WorkloadError):
        AddressPattern("seq", total_blocks=2, blocks_per_io=4)
    with pytest.raises(WorkloadError):
        AddressPattern("seq", total_blocks=10, blocks_per_io=0)


# ------------------------------------------------------------------- mixes ----
def test_parse_ratio():
    assert parse_ratio("1:4") == (1, 4)
    assert parse_ratio("0:1") == (0, 1)
    with pytest.raises(WorkloadError):
        parse_ratio("1-4")
    with pytest.raises(WorkloadError):
        parse_ratio("0:0")
    with pytest.raises(WorkloadError):
        parse_ratio("-1:2")


def test_paper_ratios_all_parse():
    for ratio in PAPER_RATIOS:
        n_ls, n_tc = parse_ratio(ratio)
        assert 1 <= n_ls + n_tc <= 5  # the paper scales to 5 tenants/SSD


def test_tenants_for_ratio_composition():
    tenants = tenants_for_ratio("2:3", op_mix="write")
    assert len(tenants) == 5
    ls = [t for t in tenants if t.is_latency_sensitive]
    tc = [t for t in tenants if not t.is_latency_sensitive]
    assert len(ls) == 2 and len(tc) == 3
    assert all(t.queue_depth == 1 for t in ls)  # §V-A
    assert all(t.queue_depth == 128 for t in tc)
    assert all(t.op_mix == "write" for t in tenants)
    assert len({t.name for t in tenants}) == 5


def test_tenants_for_ratio_prefix():
    tenants = tenants_for_ratio("1:1", prefix="n3.")
    assert tenants[0].name.startswith("n3.")


# -------------------------------------------------------------------- perf ----
def test_perf_config_defaults_match_paper():
    cfg = PerfConfig()
    assert cfg.io_size == 4096
    assert cfg.queue_depth == 128
    assert cfg.pattern == "seq"


def test_perf_config_read_fraction_by_mix():
    assert PerfConfig(op_mix="read").read_fraction == 1.0
    assert PerfConfig(op_mix="write").read_fraction == 0.0
    assert PerfConfig(op_mix="rw50").read_fraction == 0.5


def test_perf_config_validation():
    with pytest.raises(WorkloadError):
        PerfConfig(op_mix="trim")
    with pytest.raises(WorkloadError):
        PerfConfig(io_size=1000)
    with pytest.raises(WorkloadError):
        PerfConfig(queue_depth=0)
    with pytest.raises(WorkloadError):
        PerfConfig(total_ops=0)
    with pytest.raises(WorkloadError):
        PerfConfig(read_fraction=1.5)


def test_perf_generator_end_to_end():
    """Closed-loop generator against a real initiator/target rig."""
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    cfg = ScenarioConfig(protocol="spdk", network_gbps=100, total_ops=123, warmup_us=0)
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:1"))
    sc.run()
    gen = sc.generators[0]
    assert gen.issued == 123
    assert gen.completed == 123
    assert gen.inflight == 0
    assert gen.iops() > 0
    assert gen.throughput_mbps() > 0


def test_perf_generator_respects_queue_depth():
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import TenantSpec

    cfg = ScenarioConfig(protocol="spdk", network_gbps=100, total_ops=60, warmup_us=0)
    sc = Scenario.two_sided(cfg, [TenantSpec("t", Priority.THROUGHPUT, 4)])
    # Track the high-water mark of outstanding requests during the run.
    sc.run()
    gen = sc.generators[0]
    assert gen.completed == 60
    # The qpair depth bounded concurrency the whole way.
    assert sc.initiator_nodes["client0"].initiators[0].qpair.outstanding == 0


def test_perf_generator_cannot_start_twice():
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    cfg = ScenarioConfig(protocol="spdk", network_gbps=100, total_ops=10, warmup_us=0)
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:1"))
    sc.run()
    with pytest.raises(WorkloadError):
        sc.generators[0].start()


def test_perf_generator_mixed_ops_both_kinds():
    from repro.cluster import Scenario, ScenarioConfig
    from repro.workloads import tenants_for_ratio

    cfg = ScenarioConfig(protocol="spdk", network_gbps=100, total_ops=300, warmup_us=0,
                         op_mix="rw50", seed=5)
    sc = Scenario.two_sided(cfg, tenants_for_ratio("0:1", op_mix="rw50"))
    sc.run()
    summary = sc.collector.summary("tc0")
    assert summary.reads > 50
    assert summary.writes > 50
    assert summary.reads + summary.writes == 300


# ----------------------------------------------------------------- h5bench ----
def test_h5bench_config_validation():
    with pytest.raises(WorkloadError):
        H5BenchConfig(mode="append")
    with pytest.raises(WorkloadError):
        H5BenchConfig(particles_per_rank=0)
    with pytest.raises(WorkloadError):
        H5BenchConfig(io_size=1000)


def test_h5bench_bytes_per_timestep():
    cfg = H5BenchConfig(particles_per_rank=1024, element_size=8)
    assert cfg.bytes_per_timestep == 8192


def test_aggregate_bandwidth_uses_makespan():
    results = [
        H5BenchRankResult(0, bytes_moved=1000, elapsed_us=10.0, metadata_ops=0),
        H5BenchRankResult(1, bytes_moved=1000, elapsed_us=20.0, metadata_ops=0),
    ]
    assert aggregate_bandwidth_mbps(results) == pytest.approx(2000 / 20.0)
    with pytest.raises(WorkloadError):
        aggregate_bandwidth_mbps([])
